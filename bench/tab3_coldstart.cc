// Table 3: Faaslets vs container cold starts (no-op function) —
// initialisation time, CPU cycles, memory footprint, per-host capacity —
// plus the §6.5 dynamic-language-runtime variant (CPython analogue).
//
// Faaslet/Proto-Faaslet numbers are real measurements on this machine;
// Docker rows are the paper's calibrated constants (no container runtime
// offline; see DESIGN.md).
//
//   tab3_coldstart [--iters=<n>] [--tiny] [--json <path>]
//
// Exits non-zero if the generous cold-start gate fails (creation latency
// regressing by an order of magnitude).
#include <x86intrin.h>

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/faaslet.h"
#include "core/guest_api.h"
#include "mem/meminfo.h"
#include "wasm/decoder.h"
#include "workloads/minivm.h"

namespace faasm {
namespace {

struct BenchEnv {
  RealClock clock;
  InProcNetwork network;
  KvStore store;
  KvsServer server;
  KvsClient kvs;
  LocalTier tier;
  GlobalFileStore files;

  BenchEnv()
      : network(&clock, NoLatency()), server(&store, &network), kvs(&network, "bench-host"),
        tier(&kvs, &clock) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  FaasletEnv Env() {
    FaasletEnv env;
    env.clock = &clock;
    env.tier = &tier;
    env.files = &files;
    env.network = &network;
    env.host_endpoint = "bench-host";
    return env;
  }
};

std::shared_ptr<const wasm::CompiledModule> NoopModule() {
  wasm::ModuleBuilder b;
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {wasm::ValType::kI32});
  f.I32Const(0);
  f.End();
  auto decoded = wasm::DecodeModule(b.Build());
  return wasm::CompileModule(std::move(decoded).value()).value();
}

struct Measurement {
  double init_ms = 0;
  double cycles = 0;
  double footprint_bytes = 0;
};

// Measures median creation latency + cycles across `iters` creations.
template <typename CreateFn>
Measurement MeasureCreation(CreateFn create, int iters) {
  Summary time_ns;
  Summary cycles;
  for (int i = 0; i < iters; ++i) {
    const uint64_t c0 = __rdtsc();
    Stopwatch watch;
    auto faaslet = create();
    time_ns.Add(static_cast<double>(watch.ElapsedNs()));
    cycles.Add(static_cast<double>(__rdtsc() - c0));
    if (!faaslet.ok()) {
      std::fprintf(stderr, "creation failed: %s\n", faaslet.status().ToString().c_str());
      return {};
    }
  }
  Measurement out;
  out.init_ms = time_ns.Median() / 1e6;
  out.cycles = cycles.Median();
  return out;
}

// RSS delta per instance over a batch of `count` live Faaslets.
template <typename CreateFn>
double MeasureFootprint(CreateFn create, int count) {
  std::vector<std::unique_ptr<Faaslet>> live;
  live.reserve(count);
  const size_t before = CurrentRssBytes();
  for (int i = 0; i < count; ++i) {
    auto faaslet = create();
    if (faaslet.ok()) {
      live.push_back(std::move(faaslet).value());
      // Touch the first page so lazily-mapped memory is resident, matching
      // how a just-executed function would look.
      live.back()->memory().base()[0] = 1;
    }
  }
  const size_t after = CurrentRssBytes();
  return static_cast<double>(after - before) / count;
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  using namespace faasm;

  int iters = 300;
  bool tiny = false;
  std::string json_path;
  FlagTable flags;
  flags.AddInt("--iters", &iters, "creation iterations (default 300)");
  flags.AddBool("--tiny", &tiny, "few iterations, skip nothing (CI smoke)");
  flags.AddString("--json", &json_path, "write the measurements as JSON");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }
  if (tiny) {
    iters = std::min(iters, 20);
  }
  iters = std::max(1, iters);
  const int batch = std::min(200, iters);

  PrintHeader("Table 3: cold-start comparison, no-op function");
  ContainerModel docker;
  PrintContainerCalibration(docker);

  BenchEnv env;
  auto module = NoopModule();

  FunctionSpec spec;
  spec.name = "noop";
  spec.module = module;

  // --- Faaslet: fresh instantiation (decode cached; instantiate + init). ----
  auto create_faaslet = [&] { return Faaslet::Create(spec, env.Env()); };
  Measurement faaslet = MeasureCreation(create_faaslet, iters);

  // --- Proto-Faaslet: restore from snapshot. ---------------------------------
  auto prototype = Faaslet::Create(spec, env.Env()).value();
  auto proto = ProtoFaaslet::CaptureFrom(*prototype).value();
  auto create_proto = [&] { return Faaslet::CreateFromProto(spec, env.Env(), proto); };
  Measurement proto_m = MeasureCreation(create_proto, iters);

  faaslet.footprint_bytes = MeasureFootprint(create_faaslet, batch);
  proto_m.footprint_bytes = MeasureFootprint(create_proto, batch);

  const double host_memory = 16.0 * 1024 * 1024 * 1024;  // paper testbed host
  const double docker_capacity = host_memory / docker.base_footprint_bytes;
  const double docker_cycles = 2.6e9 * (docker.cold_start_ns / 1e9);  // 2.6 GHz testbed

  std::printf("\n%-22s %14s %14s %16s %12s\n", "", "Docker(calib)", "Faaslet", "Proto-Faaslet",
              "vs Docker");
  std::printf("%-22s %12.1f ms %12.2f ms %14.3f ms %11.0fx\n", "Initialisation",
              docker.cold_start_ns / 1e6, faaslet.init_ms, proto_m.init_ms,
              (docker.cold_start_ns / 1e6) / proto_m.init_ms);
  std::printf("%-22s %14.2e %14.2e %16.2e %11.0fx\n", "CPU cycles", docker_cycles,
              faaslet.cycles, proto_m.cycles, docker_cycles / proto_m.cycles);
  std::printf("%-22s %11.1f MB %12.0f KB %14.0f KB %11.0fx\n", "Memory (RSS delta)",
              docker.base_footprint_bytes / (1024.0 * 1024.0), faaslet.footprint_bytes / 1024.0,
              proto_m.footprint_bytes / 1024.0,
              docker.base_footprint_bytes / proto_m.footprint_bytes);
  std::printf("%-22s %14.0f %14.0f %16.0f %11.1fx\n", "Capacity (16GB host)", docker_capacity,
              host_memory / faaslet.footprint_bytes, host_memory / proto_m.footprint_bytes,
              (host_memory / proto_m.footprint_bytes) / docker_capacity);

  // --- §6.5: dynamic-language-runtime no-op (CPython analogue) ----------------
  PrintHeader("Sec 6.5: language-runtime no-op (MiniVM as the CPython analogue)");
  const MviProgram& program = MiniVmBenchmarks()[0];
  auto vm_module = BuildMiniVmWasm(program.code).value();
  FunctionSpec vm_spec;
  vm_spec.name = "minivm";
  vm_spec.module = vm_module;
  vm_spec.entrypoint = "run";

  auto vm_prototype = Faaslet::Create(vm_spec, env.Env()).value();
  auto vm_proto = ProtoFaaslet::CaptureFrom(*vm_prototype).value();
  Measurement vm_cold =
      MeasureCreation([&] { return Faaslet::Create(vm_spec, env.Env()); }, batch);
  Measurement vm_restore = MeasureCreation(
      [&] { return Faaslet::CreateFromProto(vm_spec, env.Env(), vm_proto); }, batch);

  std::printf("%-34s %10.1f ms (calibrated python:3.7-alpine)\n", "Container initialisation",
              docker.python_cold_start_ns / 1e6);
  std::printf("%-34s %10.2f ms (measured)\n", "Faaslet + runtime image cold", vm_cold.init_ms);
  std::printf("%-34s %10.3f ms (measured, %0.0fx vs container)\n", "Proto-Faaslet restore",
              vm_restore.init_ms, (docker.python_cold_start_ns / 1e6) / vm_restore.init_ms);

  // Generous no-regression gate: interpreter-side changes (e.g. the 8 GiB
  // guard reservation each linear memory now maps) must not blow up creation
  // latency. The bounds are far above any healthy machine's numbers and only
  // catch order-of-magnitude regressions.
  const bool gate_ok = faaslet.init_ms < 250.0 && proto_m.init_ms < 50.0;
  if (!gate_ok) {
    std::fprintf(stderr,
                 "cold-start gate FAILED: faaslet %.2f ms (limit 250), proto %.3f ms "
                 "(limit 50)\n",
                 faaslet.init_ms, proto_m.init_ms);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"tab3_coldstart\",\n  \"iters\": %d,\n", iters);
    std::fprintf(f, "  \"faaslet\": {\"init_ms\": %.4f, \"footprint_kb\": %.1f},\n",
                 faaslet.init_ms, faaslet.footprint_bytes / 1024.0);
    std::fprintf(f, "  \"proto\": {\"init_ms\": %.4f, \"footprint_kb\": %.1f},\n",
                 proto_m.init_ms, proto_m.footprint_bytes / 1024.0);
    std::fprintf(f, "  \"minivm\": {\"cold_ms\": %.4f, \"restore_ms\": %.4f},\n",
                 vm_cold.init_ms, vm_restore.init_ms);
    std::fprintf(f, "  \"gate_ok\": %s\n}\n", gate_ok ? "true" : "false");
    std::fclose(f);
    std::printf("\n[wrote %s]\n", json_path.c_str());
  }
  return gate_ok ? 0 : 1;
}
