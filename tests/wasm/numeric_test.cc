// Numeric semantics vs the spec: parameterised sweeps compare interpreter
// results for every i32/i64 binary operator against natively computed
// reference semantics, plus edge-case and trap tests.
#include <cmath>

#include "common/rng.h"
#include "tests/wasm/wasm_test_util.h"

namespace faasm::wasm {
namespace {

std::unique_ptr<Instance> BinOpI32(Op op) {
  return SingleFunction({ValType::kI32, ValType::kI32}, {ValType::kI32},
                        [op](FunctionBuilder& f) {
                          f.LocalGet(0);
                          f.LocalGet(1);
                          f.Emit(op);
                          f.End();
                        });
}

std::unique_ptr<Instance> BinOpI64(Op op) {
  return SingleFunction({ValType::kI64, ValType::kI64}, {ValType::kI64},
                        [op](FunctionBuilder& f) {
                          f.LocalGet(0);
                          f.LocalGet(1);
                          f.Emit(op);
                          f.End();
                        });
}

uint32_t RefI32(Op op, uint32_t a, uint32_t b) {
  const int32_t sa = static_cast<int32_t>(a);
  switch (op) {
    case Op::kI32Add: return a + b;
    case Op::kI32Sub: return a - b;
    case Op::kI32Mul: return a * b;
    case Op::kI32And: return a & b;
    case Op::kI32Or: return a | b;
    case Op::kI32Xor: return a ^ b;
    case Op::kI32Shl: return a << (b & 31);
    case Op::kI32ShrU: return a >> (b & 31);
    case Op::kI32ShrS: return static_cast<uint32_t>(sa >> (b & 31));
    case Op::kI32Rotl: return (a << (b & 31)) | (a >> ((32 - b) & 31));
    case Op::kI32Rotr: return (a >> (b & 31)) | (a << ((32 - b) & 31));
    default: ADD_FAILURE(); return 0;
  }
}

class I32BinOpProperty : public ::testing::TestWithParam<Op> {};

TEST_P(I32BinOpProperty, MatchesReferenceOnRandomInputs) {
  const Op op = GetParam();
  auto instance = BinOpI32(op);
  Rng rng(static_cast<uint64_t>(op) * 7919);
  const uint32_t interesting[] = {0, 1, 2, 31, 32, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF};
  for (uint32_t a : interesting) {
    for (uint32_t b : interesting) {
      auto out = RunBinary(*instance, MakeI32(a), MakeI32(b));
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(out.value().i32, RefI32(op, a, b)) << "a=" << a << " b=" << b;
    }
  }
  for (int i = 0; i < 500; ++i) {
    const uint32_t a = rng.NextU32();
    const uint32_t b = rng.NextU32();
    auto out = RunBinary(*instance, MakeI32(a), MakeI32(b));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value().i32, RefI32(op, a, b)) << "a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, I32BinOpProperty,
                         ::testing::Values(Op::kI32Add, Op::kI32Sub, Op::kI32Mul, Op::kI32And,
                                           Op::kI32Or, Op::kI32Xor, Op::kI32Shl, Op::kI32ShrU,
                                           Op::kI32ShrS, Op::kI32Rotl, Op::kI32Rotr));

TEST(NumericTest, I32DivisionSemantics) {
  auto div_s = BinOpI32(Op::kI32DivS);
  auto div_u = BinOpI32(Op::kI32DivU);
  auto rem_s = BinOpI32(Op::kI32RemS);
  auto rem_u = BinOpI32(Op::kI32RemU);

  EXPECT_EQ(RunBinary(*div_s, MakeI32(static_cast<uint32_t>(-7)), MakeI32(2)).value().i32,
            static_cast<uint32_t>(-3));  // trunc toward zero
  EXPECT_EQ(RunBinary(*rem_s, MakeI32(static_cast<uint32_t>(-7)), MakeI32(2)).value().i32,
            static_cast<uint32_t>(-1));
  EXPECT_EQ(RunBinary(*div_u, MakeI32(0xFFFFFFFE), MakeI32(2)).value().i32, 0x7FFFFFFFu);
  EXPECT_EQ(RunBinary(*rem_u, MakeI32(7), MakeI32(4)).value().i32, 3u);

  // Division by zero traps.
  for (auto* inst : {div_s.get(), div_u.get(), rem_s.get(), rem_u.get()}) {
    auto out = RunBinary(*inst, MakeI32(1), MakeI32(0));
    ASSERT_FALSE(out.ok());
    EXPECT_NE(out.status().message().find("divide by zero"), std::string::npos);
  }
  // INT_MIN / -1 overflows; INT_MIN % -1 == 0.
  auto overflow =
      RunBinary(*div_s, MakeI32(0x80000000), MakeI32(0xFFFFFFFF));
  ASSERT_FALSE(overflow.ok());
  EXPECT_NE(overflow.status().message().find("overflow"), std::string::npos);
  EXPECT_EQ(RunBinary(*rem_s, MakeI32(0x80000000), MakeI32(0xFFFFFFFF)).value().i32, 0u);
}

TEST(NumericTest, I64DivisionSemantics) {
  auto div_s = BinOpI64(Op::kI64DivS);
  auto rem_s = BinOpI64(Op::kI64RemS);
  auto zero = RunBinary(*div_s, MakeI64(5), MakeI64(0));
  EXPECT_FALSE(zero.ok());
  auto overflow = RunBinary(*div_s, MakeI64(0x8000000000000000ull), MakeI64(UINT64_MAX));
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(RunBinary(*rem_s, MakeI64(0x8000000000000000ull), MakeI64(UINT64_MAX)).value().i64,
            0u);
  EXPECT_EQ(
      RunBinary(*div_s, MakeI64(static_cast<uint64_t>(-100)), MakeI64(7)).value().i64,
      static_cast<uint64_t>(-14));
}

std::unique_ptr<Instance> UnOpI32(Op op) {
  return SingleFunction({ValType::kI32}, {ValType::kI32}, [op](FunctionBuilder& f) {
    f.LocalGet(0);
    f.Emit(op);
    f.End();
  });
}

TEST(NumericTest, BitCounting) {
  auto clz = UnOpI32(Op::kI32Clz);
  auto ctz = UnOpI32(Op::kI32Ctz);
  auto popcnt = UnOpI32(Op::kI32Popcnt);
  EXPECT_EQ(RunUnary(*clz, MakeI32(0)).value().i32, 32u);
  EXPECT_EQ(RunUnary(*clz, MakeI32(1)).value().i32, 31u);
  EXPECT_EQ(RunUnary(*clz, MakeI32(0x80000000)).value().i32, 0u);
  EXPECT_EQ(RunUnary(*ctz, MakeI32(0)).value().i32, 32u);
  EXPECT_EQ(RunUnary(*ctz, MakeI32(0x80000000)).value().i32, 31u);
  EXPECT_EQ(RunUnary(*popcnt, MakeI32(0xFFFFFFFF)).value().i32, 32u);
  EXPECT_EQ(RunUnary(*popcnt, MakeI32(0x55555555)).value().i32, 16u);
}

TEST(NumericTest, SignExtensionOps) {
  auto ext8 = UnOpI32(Op::kI32Extend8S);
  auto ext16 = UnOpI32(Op::kI32Extend16S);
  EXPECT_EQ(RunUnary(*ext8, MakeI32(0x80)).value().i32, 0xFFFFFF80u);
  EXPECT_EQ(RunUnary(*ext8, MakeI32(0x7F)).value().i32, 0x7Fu);
  EXPECT_EQ(RunUnary(*ext16, MakeI32(0x8000)).value().i32, 0xFFFF8000u);
}

TEST(NumericTest, FloatMinMaxNanAndSignedZero) {
  auto fmin = SingleFunction({ValType::kF64, ValType::kF64}, {ValType::kF64},
                             [](FunctionBuilder& f) {
                               f.LocalGet(0);
                               f.LocalGet(1);
                               f.Emit(Op::kF64Min);
                               f.End();
                             });
  auto fmax = SingleFunction({ValType::kF64, ValType::kF64}, {ValType::kF64},
                             [](FunctionBuilder& f) {
                               f.LocalGet(0);
                               f.LocalGet(1);
                               f.Emit(Op::kF64Max);
                               f.End();
                             });
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(RunBinary(*fmin, MakeF64(nan), MakeF64(1.0)).value().f64));
  EXPECT_TRUE(std::isnan(RunBinary(*fmax, MakeF64(2.0), MakeF64(nan)).value().f64));
  EXPECT_TRUE(std::signbit(RunBinary(*fmin, MakeF64(0.0), MakeF64(-0.0)).value().f64));
  EXPECT_FALSE(std::signbit(RunBinary(*fmax, MakeF64(0.0), MakeF64(-0.0)).value().f64));
  EXPECT_EQ(RunBinary(*fmin, MakeF64(3.0), MakeF64(-5.0)).value().f64, -5.0);
}

TEST(NumericTest, TruncationTraps) {
  auto trunc = SingleFunction({ValType::kF64}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.LocalGet(0);
    f.Emit(Op::kI32TruncF64S);
    f.End();
  });
  EXPECT_EQ(RunUnary(*trunc, MakeF64(3.99)).value().i32, 3u);
  EXPECT_EQ(RunUnary(*trunc, MakeF64(-3.99)).value().i32, static_cast<uint32_t>(-3));
  EXPECT_EQ(RunUnary(*trunc, MakeF64(2147483647.0)).value().i32, 2147483647u);

  auto nan_result = RunUnary(*trunc, MakeF64(std::nan("")));
  ASSERT_FALSE(nan_result.ok());
  EXPECT_NE(nan_result.status().message().find("invalid conversion"), std::string::npos);

  auto too_big = RunUnary(*trunc, MakeF64(2147483648.0));
  ASSERT_FALSE(too_big.ok());
  EXPECT_NE(too_big.status().message().find("overflow"), std::string::npos);

  auto too_small = RunUnary(*trunc, MakeF64(-2147483649.0));
  EXPECT_FALSE(too_small.ok());
}

TEST(NumericTest, UnsignedTruncation) {
  auto trunc_u = SingleFunction({ValType::kF64}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.LocalGet(0);
    f.Emit(Op::kI32TruncF64U);
    f.End();
  });
  EXPECT_EQ(RunUnary(*trunc_u, MakeF64(4294967295.0)).value().i32, 4294967295u);
  EXPECT_EQ(RunUnary(*trunc_u, MakeF64(-0.5)).value().i32, 0u);  // trunc(-0.5) == 0, in range
  EXPECT_FALSE(RunUnary(*trunc_u, MakeF64(-1.0)).ok());
  EXPECT_FALSE(RunUnary(*trunc_u, MakeF64(4294967296.0)).ok());
}

TEST(NumericTest, ConversionsRoundTrip) {
  auto convert = SingleFunction({ValType::kI64}, {ValType::kF64}, [](FunctionBuilder& f) {
    f.LocalGet(0);
    f.Emit(Op::kF64ConvertI64U);
    f.End();
  });
  EXPECT_EQ(RunUnary(*convert, MakeI64(1ull << 62)).value().f64,
            static_cast<double>(1ull << 62));
  EXPECT_EQ(RunUnary(*convert, MakeI64(UINT64_MAX)).value().f64,
            static_cast<double>(UINT64_MAX));
}

TEST(NumericTest, ReinterpretPreservesBits) {
  auto reinterpret = SingleFunction({ValType::kF64}, {ValType::kI64}, [](FunctionBuilder& f) {
    f.LocalGet(0);
    f.Emit(Op::kI64ReinterpretF64);
    f.End();
  });
  EXPECT_EQ(RunUnary(*reinterpret, MakeF64(1.0)).value().i64, 0x3FF0000000000000ull);
  EXPECT_EQ(RunUnary(*reinterpret, MakeF64(-0.0)).value().i64, 0x8000000000000000ull);
}

TEST(NumericTest, NearestTiesToEven) {
  auto nearest = SingleFunction({ValType::kF64}, {ValType::kF64}, [](FunctionBuilder& f) {
    f.LocalGet(0);
    f.Emit(Op::kF64Nearest);
    f.End();
  });
  EXPECT_EQ(RunUnary(*nearest, MakeF64(2.5)).value().f64, 2.0);
  EXPECT_EQ(RunUnary(*nearest, MakeF64(3.5)).value().f64, 4.0);
  EXPECT_EQ(RunUnary(*nearest, MakeF64(-2.5)).value().f64, -2.0);
}

TEST(NumericTest, I64ShiftsUseMod64) {
  auto shl = BinOpI64(Op::kI64Shl);
  EXPECT_EQ(RunBinary(*shl, MakeI64(1), MakeI64(64)).value().i64, 1u);
  EXPECT_EQ(RunBinary(*shl, MakeI64(1), MakeI64(65)).value().i64, 2u);
}

TEST(NumericTest, ComparisonResults) {
  auto lt_s = SingleFunction({ValType::kI32, ValType::kI32}, {ValType::kI32},
                             [](FunctionBuilder& f) {
                               f.LocalGet(0);
                               f.LocalGet(1);
                               f.Emit(Op::kI32LtS);
                               f.End();
                             });
  EXPECT_EQ(RunBinary(*lt_s, MakeI32(static_cast<uint32_t>(-1)), MakeI32(0)).value().i32, 1u);
  auto lt_u = BinOpI32(Op::kI32And);  // placeholder to reuse helper
  (void)lt_u;
  auto ltu = SingleFunction({ValType::kI32, ValType::kI32}, {ValType::kI32},
                            [](FunctionBuilder& f) {
                              f.LocalGet(0);
                              f.LocalGet(1);
                              f.Emit(Op::kI32LtU);
                              f.End();
                            });
  EXPECT_EQ(RunBinary(*ltu, MakeI32(static_cast<uint32_t>(-1)), MakeI32(0)).value().i32, 0u);
}

}  // namespace
}  // namespace faasm::wasm
