#include "kvs/kvs_client.h"

#include <algorithm>
#include <functional>

namespace faasm {

namespace {
// Response layout: u8 status_code, then payload (op-specific).
void WriteStatus(ByteWriter& writer, const Status& status) {
  writer.Put<uint8_t>(static_cast<uint8_t>(status.code()));
}

Status ReadStatus(ByteReader& reader) {
  auto code = reader.Get<uint8_t>();
  if (!code.ok()) {
    return Internal("kvs: malformed response");
  }
  const auto status_code = static_cast<StatusCode>(code.value());
  if (status_code == StatusCode::kOk) {
    return OkStatus();
  }
  return Status(status_code, "kvs remote error");
}
}  // namespace

// --- Server -------------------------------------------------------------------

KvsServer::KvsServer(KvStore* store, InProcNetwork* network, std::string endpoint,
                     const ShardMap* map)
    : store_(store), network_(network), endpoint_(std::move(endpoint)), map_(map) {
  network_->RegisterEndpoint(endpoint_, [this](const Bytes& request) { return Handle(request); });
}

KvsServer::~KvsServer() { network_->UnregisterEndpoint(endpoint_); }

Bytes KvsServer::Handle(const Bytes& request) {
  Bytes response;
  ByteWriter writer(response);
  ByteReader reader(request);

  auto op_byte = reader.Get<uint8_t>();
  auto key = reader.GetString();
  if (!op_byte.ok() || !key.ok()) {
    WriteStatus(writer, InvalidArgument("malformed request"));
    return response;
  }

  // Epoch-aware ownership check: a request routed under a stale shard map
  // lands here although mastership moved — redirect the client instead of
  // serving (or worse, creating) a stranded copy. Migration installs are
  // exempt: they stream a key in BEFORE the epoch flips it to this shard.
  if (map_ != nullptr && static_cast<KvsOp>(op_byte.value()) != KvsOp::kMigrateInstall &&
      map_->MasterFor(key.value()) != endpoint_) {
    WriteStatus(writer, WrongMaster("kvs: '" + key.value() + "' is not mastered by " + endpoint_));
    return response;
  }

  switch (static_cast<KvsOp>(op_byte.value())) {
    case KvsOp::kGet: {
      auto value = store_->Get(key.value());
      WriteStatus(writer, value.status());
      if (value.ok()) {
        writer.PutBytes(value.value());
      }
      break;
    }
    case KvsOp::kSet: {
      auto value = reader.GetBytes();
      if (!value.ok()) {
        WriteStatus(writer, value.status());
        break;
      }
      WriteStatus(writer, store_->Set(key.value(), std::move(value).value()));
      break;
    }
    case KvsOp::kGetRange: {
      auto offset = reader.Get<uint64_t>();
      auto len = reader.Get<uint64_t>();
      if (!offset.ok() || !len.ok()) {
        WriteStatus(writer, InvalidArgument("malformed range"));
        break;
      }
      auto value = store_->GetRange(key.value(), offset.value(), len.value());
      WriteStatus(writer, value.status());
      if (value.ok()) {
        writer.PutBytes(value.value());
      }
      break;
    }
    case KvsOp::kSetRange: {
      auto offset = reader.Get<uint64_t>();
      auto value = reader.GetBytes();
      if (!offset.ok() || !value.ok()) {
        WriteStatus(writer, InvalidArgument("malformed range write"));
        break;
      }
      WriteStatus(writer, store_->SetRange(key.value(), offset.value(), value.value()));
      break;
    }
    case KvsOp::kSetRanges: {
      auto count = reader.Get<uint32_t>();
      if (!count.ok()) {
        WriteStatus(writer, count.status());
        break;
      }
      std::vector<ValueRange> ranges;
      // `count` is wire data; cap the reservation and let the per-range
      // parse loop reject truncated payloads instead of pre-allocating for
      // an attacker-chosen count.
      ranges.reserve(std::min<uint32_t>(count.value(), 1024));
      Status parse = OkStatus();
      for (uint32_t i = 0; i < count.value(); ++i) {
        auto offset = reader.Get<uint64_t>();
        auto bytes = reader.GetBytes();
        if (!offset.ok() || !bytes.ok()) {
          parse = InvalidArgument("malformed range-batch write");
          break;
        }
        ranges.push_back(ValueRange{offset.value(), std::move(bytes).value()});
      }
      WriteStatus(writer, parse.ok() ? store_->SetRanges(key.value(), ranges) : parse);
      break;
    }
    case KvsOp::kAppend: {
      auto value = reader.GetBytes();
      if (!value.ok()) {
        WriteStatus(writer, value.status());
        break;
      }
      auto new_len = store_->Append(key.value(), value.value());
      WriteStatus(writer, new_len.status());
      if (new_len.ok()) {
        writer.Put<uint64_t>(new_len.value());
      }
      break;
    }
    case KvsOp::kDelete:
      WriteStatus(writer, store_->Delete(key.value()));
      break;
    case KvsOp::kExists:
      WriteStatus(writer, OkStatus());
      writer.Put<uint8_t>(store_->Exists(key.value()) ? 1 : 0);
      break;
    case KvsOp::kSize: {
      auto size = store_->Size(key.value());
      WriteStatus(writer, size.status());
      if (size.ok()) {
        writer.Put<uint64_t>(size.value());
      }
      break;
    }
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite: {
      auto owner = reader.GetString();
      if (!owner.ok()) {
        WriteStatus(writer, owner.status());
        break;
      }
      auto acquired = op_byte.value() == static_cast<uint8_t>(KvsOp::kLockRead)
                          ? store_->TryLockRead(key.value(), owner.value())
                          : store_->TryLockWrite(key.value(), owner.value());
      WriteStatus(writer, acquired.status());
      if (acquired.ok()) {
        writer.Put<uint8_t>(acquired.value() ? 1 : 0);
      }
      break;
    }
    case KvsOp::kUnlockRead:
    case KvsOp::kUnlockWrite: {
      auto owner = reader.GetString();
      if (!owner.ok()) {
        WriteStatus(writer, owner.status());
        break;
      }
      WriteStatus(writer, op_byte.value() == static_cast<uint8_t>(KvsOp::kUnlockRead)
                              ? store_->UnlockRead(key.value(), owner.value())
                              : store_->UnlockWrite(key.value(), owner.value()));
      break;
    }
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove: {
      auto member = reader.GetString();
      if (!member.ok()) {
        WriteStatus(writer, member.status());
        break;
      }
      auto changed = op_byte.value() == static_cast<uint8_t>(KvsOp::kSetAdd)
                         ? store_->SetAdd(key.value(), member.value())
                         : store_->SetRemove(key.value(), member.value());
      WriteStatus(writer, changed.status());
      if (changed.ok()) {
        writer.Put<uint8_t>(changed.value() ? 1 : 0);
      }
      break;
    }
    case KvsOp::kSetMembers: {
      auto members = store_->SetMembers(key.value());
      WriteStatus(writer, OkStatus());
      writer.Put<uint32_t>(static_cast<uint32_t>(members.size()));
      for (const std::string& member : members) {
        writer.PutString(member);
      }
      break;
    }
    case KvsOp::kMigrateInstall: {
      auto record_bytes = reader.GetBytes();
      if (!record_bytes.ok()) {
        WriteStatus(writer, record_bytes.status());
        break;
      }
      auto record = KeyExport::Deserialize(record_bytes.value());
      if (!record.ok()) {
        WriteStatus(writer, record.status());
        break;
      }
      store_->InstallKey(key.value(), record.value());
      WriteStatus(writer, OkStatus());
      break;
    }
    default:
      WriteStatus(writer, InvalidArgument("unknown kvs op"));
      break;
  }
  return response;
}

// --- Client -------------------------------------------------------------------

KvsClient::KvsClient(InProcNetwork* network, std::string source, std::string server)
    : network_(network), source_(std::move(source)), server_(std::move(server)) {}

KvsClient::KvsClient(InProcNetwork* network, std::string source, const ShardMap* shards,
                     KvStore* local_store)
    : network_(network),
      source_(std::move(source)),
      shards_(shards),
      local_store_(local_store),
      local_endpoint_(ShardMap::EndpointForHost(source_)) {}

KvsClient::Route KvsClient::RouteFor(const std::string& key) const {
  if (shards_ == nullptr) {
    return Route{nullptr, server_};
  }
  std::string master = shards_->MasterFor(key);
  if (local_store_ != nullptr && master == local_endpoint_) {
    // Local fast path: this host IS the key's master. Direct in-process
    // store call; no round trip, no accounted bytes.
    return Route{local_store_, std::move(master)};
  }
  return Route{nullptr, std::move(master)};
}

bool KvsClient::MasterLocal(const std::string& key) const {
  // Defined in terms of RouteFor so the scheduler's placement hint can never
  // diverge from the routing the ops actually take.
  return RouteFor(key).local != nullptr;
}

std::string KvsClient::MasterHostFor(const std::string& key) const {
  if (shards_ == nullptr) {
    return "";
  }
  return ShardMap::HostForEndpoint(shards_->MasterFor(key));
}

Result<Bytes> KvsClient::Invoke(const std::string& server, KvsOp op,
                                const std::function<void(ByteWriter&)>& write_args) {
  Bytes request;
  ByteWriter writer(request);
  writer.Put<uint8_t>(static_cast<uint8_t>(op));
  write_args(writer);
  return network_->Call(source_, server, request);
}
Status KvsClient::Set(const std::string& key, const Bytes& value) {
  return Routed(
      key, [&](KvStore& store) { return store.Set(key, value); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kSet, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutBytes(value);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<Bytes> KvsClient::Get(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.Get(key); },
      [&](const std::string& server) -> Result<Bytes> {
        auto response = Invoke(server, KvsOp::kGet, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.GetBytes();
      });
}

Result<Bytes> KvsClient::GetRange(const std::string& key, uint64_t offset, uint64_t len) {
  return Routed(
      key, [&](KvStore& store) { return store.GetRange(key, offset, len); },
      [&](const std::string& server) -> Result<Bytes> {
        auto response = Invoke(server, KvsOp::kGetRange, [&](ByteWriter& w) {
          w.PutString(key);
          w.Put<uint64_t>(offset);
          w.Put<uint64_t>(len);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.GetBytes();
      });
}

Status KvsClient::SetRange(const std::string& key, uint64_t offset, const Bytes& bytes) {
  return Routed(
      key, [&](KvStore& store) { return store.SetRange(key, offset, bytes); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kSetRange, [&](ByteWriter& w) {
          w.PutString(key);
          w.Put<uint64_t>(offset);
          w.PutBytes(bytes);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Status KvsClient::SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
  return Routed(
      key, [&](KvStore& store) { return store.SetRanges(key, ranges); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kSetRanges, [&](ByteWriter& w) {
          w.PutString(key);
          w.Put<uint32_t>(static_cast<uint32_t>(ranges.size()));
          for (const ValueRange& range : ranges) {
            w.Put<uint64_t>(range.offset);
            w.PutBytes(range.bytes);
          }
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<uint64_t> KvsClient::Append(const std::string& key, const Bytes& bytes) {
  return Routed(
      key,
      [&](KvStore& store) -> Result<uint64_t> {
        FAASM_ASSIGN_OR_RETURN(size_t new_len, store.Append(key, bytes));
        return static_cast<uint64_t>(new_len);
      },
      [&](const std::string& server) -> Result<uint64_t> {
        auto response = Invoke(server, KvsOp::kAppend, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutBytes(bytes);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.Get<uint64_t>();
      });
}

Status KvsClient::Delete(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.Delete(key); },
      [&](const std::string& server) {
        auto response =
            Invoke(server, KvsOp::kDelete, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<bool> KvsClient::Exists(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) -> Result<bool> { return store.Exists(key); },
      [&](const std::string& server) -> Result<bool> {
        auto response =
            Invoke(server, KvsOp::kExists, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        auto flag = reader.Get<uint8_t>();
        if (!flag.ok()) {
          return flag.status();
        }
        return flag.value() != 0;
      });
}

Result<uint64_t> KvsClient::Size(const std::string& key) {
  return Routed(
      key,
      [&](KvStore& store) -> Result<uint64_t> {
        FAASM_ASSIGN_OR_RETURN(size_t size, store.Size(key));
        return static_cast<uint64_t>(size);
      },
      [&](const std::string& server) -> Result<uint64_t> {
        auto response = Invoke(server, KvsOp::kSize, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.Get<uint64_t>();
      });
}

Result<bool> KvsClient::TryLockRead(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.TryLockRead(key, source_); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kLockRead, key, source_); });
}
Result<bool> KvsClient::TryLockWrite(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.TryLockWrite(key, source_); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kLockWrite, key, source_); });
}

Status KvsClient::UnlockRead(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.UnlockRead(key, source_); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kUnlockRead, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutString(source_);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Status KvsClient::UnlockWrite(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.UnlockWrite(key, source_); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kUnlockWrite, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutString(source_);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<bool> KvsClient::BoolOp(const std::string& server, KvsOp op, const std::string& key,
                               const std::string& arg) {
  auto response = Invoke(server, op, [&](ByteWriter& w) {
    w.PutString(key);
    w.PutString(arg);
  });
  if (!response.ok()) {
    return response.status();
  }
  ByteReader reader(response.value());
  FAASM_RETURN_IF_ERROR(ReadStatus(reader));
  auto flag = reader.Get<uint8_t>();
  if (!flag.ok()) {
    return flag.status();
  }
  return flag.value() != 0;
}

Result<bool> KvsClient::SetAdd(const std::string& key, const std::string& member) {
  return Routed(
      key, [&](KvStore& store) { return store.SetAdd(key, member); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kSetAdd, key, member); });
}
Result<bool> KvsClient::SetRemove(const std::string& key, const std::string& member) {
  return Routed(
      key, [&](KvStore& store) { return store.SetRemove(key, member); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kSetRemove, key, member); });
}

Result<std::vector<std::string>> KvsClient::SetMembers(const std::string& key) {
  return Routed(
      key,
      [&](KvStore& store) -> Result<std::vector<std::string>> { return store.SetMembers(key); },
      [&](const std::string& server) -> Result<std::vector<std::string>> {
        auto response =
            Invoke(server, KvsOp::kSetMembers, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        auto count = reader.Get<uint32_t>();
        if (!count.ok()) {
          return count.status();
        }
        std::vector<std::string> members;
        members.reserve(count.value());
        for (uint32_t i = 0; i < count.value(); ++i) {
          auto member = reader.GetString();
          if (!member.ok()) {
            return member.status();
          }
          members.push_back(std::move(member).value());
        }
        return members;
      });
}

}  // namespace faasm
