#include "common/bytes.h"

namespace faasm {

uint64_t HashBytes(const uint8_t* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace faasm
