#include "mem/linear_memory.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace faasm {

Result<std::unique_ptr<LinearMemory>> LinearMemory::Create(uint32_t initial_pages,
                                                           uint32_t max_pages) {
  if (max_pages < initial_pages) {
    return InvalidArgument("LinearMemory: max_pages < initial_pages");
  }
  if (static_cast<uint64_t>(max_pages) * kWasmPageBytes > kMaxLinearBytes) {
    return InvalidArgument("LinearMemory: max_pages exceeds 32-bit address space");
  }
  void* base = mmap(nullptr, kReservationBytes, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED) {
    return ResourceExhausted(std::string("LinearMemory reserve failed: ") + std::strerror(errno));
  }
  auto memory = std::unique_ptr<LinearMemory>(
      new LinearMemory(static_cast<uint8_t*>(base), initial_pages, max_pages));
  Status commit = memory->CommitPages(0, memory->size_bytes());
  if (!commit.ok()) {
    return commit;
  }
  return memory;
}

LinearMemory::~LinearMemory() {
  if (base_ != nullptr) {
    munmap(base_, kReservationBytes);
  }
}

Status LinearMemory::CommitPages(size_t from_byte, size_t to_byte) {
  if (to_byte <= from_byte) {
    return OkStatus();
  }
  if (mprotect(base_ + from_byte, to_byte - from_byte, PROT_READ | PROT_WRITE) != 0) {
    return ResourceExhausted(std::string("LinearMemory commit failed: ") + std::strerror(errno));
  }
  return OkStatus();
}

uint32_t LinearMemory::Grow(uint32_t delta_pages) {
  const uint32_t old_pages = size_pages_;
  const uint64_t new_pages = static_cast<uint64_t>(old_pages) + delta_pages;
  if (new_pages > max_pages_) {
    return UINT32_MAX;  // wasm memory.grow failure value
  }
  const size_t old_bytes = size_bytes();
  const size_t new_bytes = static_cast<size_t>(new_pages) * kWasmPageBytes;
  if (!CommitPages(old_bytes, new_bytes).ok()) {
    return UINT32_MAX;
  }
  size_pages_ = static_cast<uint32_t>(new_pages);
  return old_pages;
}

Status LinearMemory::Read(uint64_t offset, void* dst, size_t len) const {
  if (!InBounds(offset, len)) {
    return OutOfRange("LinearMemory read out of bounds");
  }
  std::memcpy(dst, base_ + offset, len);
  return OkStatus();
}

Status LinearMemory::Write(uint64_t offset, const void* src, size_t len) {
  if (!InBounds(offset, len)) {
    return OutOfRange("LinearMemory write out of bounds");
  }
  std::memcpy(base_ + offset, src, len);
  MarkDirty(offset, len);
  return OkStatus();
}

void LinearMemory::MarkDirtySlow(uint64_t offset, uint64_t len) {
  // Split the range over the private prefix and any shared mappings it
  // overlaps, forwarding each piece to the owning tracker in region-local
  // coordinates. Pieces in a mapping's alignment tail (between the region's
  // host pages and the wasm page boundary) clip inside the region tracker.
  const uint64_t end = offset + len;
  uint64_t cursor = offset;
  const uint64_t private_end = shared_mappings_.front().guest_offset;
  if (cursor < private_end) {
    dirty_->MarkDirty(cursor, std::min(end, private_end) - cursor);
    cursor = private_end;
  }
  for (SharedMapping& mapping : shared_mappings_) {
    if (cursor >= end) {
      return;
    }
    const uint64_t map_start = mapping.guest_offset;
    const uint64_t map_end =
        map_start + static_cast<uint64_t>(mapping.mapped_pages) * kWasmPageBytes;
    if (end <= map_start || cursor >= map_end) {
      continue;
    }
    const uint64_t piece_start = std::max(cursor, map_start);
    const uint64_t piece_end = std::min(end, map_end);
    mapping.region->dirty().MarkDirty(piece_start - map_start, piece_end - piece_start);
    cursor = piece_end;
  }
}

Result<std::string> LinearMemory::ReadCString(uint32_t offset, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    if (!InBounds(static_cast<uint64_t>(offset) + i, 1)) {
      return OutOfRange("LinearMemory c-string out of bounds");
    }
    const char c = static_cast<char>(base_[offset + i]);
    if (c == '\0') {
      return out;
    }
    out.push_back(c);
  }
  return OutOfRange("LinearMemory c-string unterminated");
}

size_t LinearMemory::private_bytes() const {
  if (shared_mappings_.empty()) {
    return size_bytes();
  }
  return shared_mappings_.front().guest_offset;
}

Result<uint32_t> LinearMemory::MapSharedRegion(std::shared_ptr<SharedRegion> region) {
  const size_t region_pages = RoundUpTo(region->mapped_size(), kWasmPageBytes) / kWasmPageBytes;
  const uint64_t new_total = static_cast<uint64_t>(size_pages_) + region_pages;
  if (new_total > max_pages_) {
    return ResourceExhausted("MapSharedRegion: function memory limit exceeded");
  }
  const size_t guest_offset = size_bytes();
  void* mapped = mmap(base_ + guest_offset, region->mapped_size(), PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_FIXED, region->fd(), 0);
  if (mapped == MAP_FAILED) {
    return ResourceExhausted(std::string("MapSharedRegion mmap failed: ") + std::strerror(errno));
  }
  // Commit any alignment tail between the region's host pages and the wasm
  // page boundary so the whole extension is accessible.
  const size_t tail_start = guest_offset + region->mapped_size();
  const size_t tail_end = guest_offset + region_pages * kWasmPageBytes;
  FAASM_RETURN_IF_ERROR(CommitPages(tail_start, tail_end));

  size_pages_ = static_cast<uint32_t>(new_total);
  shared_mappings_.push_back(SharedMapping{static_cast<uint32_t>(guest_offset),
                                           static_cast<uint32_t>(region_pages), std::move(region)});
  return static_cast<uint32_t>(guest_offset);
}

Status LinearMemory::UnmapSharedRegions() {
  if (shared_mappings_.empty()) {
    return OkStatus();
  }
  const size_t first_shared = shared_mappings_.front().guest_offset;
  const size_t end = size_bytes();
  // Replace the shared mappings (and everything after them) with fresh
  // anonymous pages, then shrink back to the private prefix.
  void* mapped = mmap(base_ + first_shared, end - first_shared, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (mapped == MAP_FAILED) {
    return Internal(std::string("UnmapSharedRegions failed: ") + std::strerror(errno));
  }
  shared_mappings_.clear();
  size_pages_ = static_cast<uint32_t>(first_shared / kWasmPageBytes);
  return OkStatus();
}

Status LinearMemory::RestoreFromBytes(const uint8_t* src, size_t len) {
  FAASM_RETURN_IF_ERROR(UnmapSharedRegions());
  const size_t needed_pages = RoundUpTo(len, kWasmPageBytes) / kWasmPageBytes;
  if (needed_pages > size_pages_) {
    if (Grow(static_cast<uint32_t>(needed_pages - size_pages_)) == UINT32_MAX) {
      return ResourceExhausted("RestoreFromBytes: memory limit exceeded");
    }
  }
  std::memcpy(base_, src, len);
  if (len < size_bytes()) {
    std::memset(base_ + len, 0, size_bytes() - len);
  }
  dirty_->ClearDirty();
  return OkStatus();
}

Status LinearMemory::RestoreDirtyFrom(const uint8_t* src, size_t len) {
  FAASM_RETURN_IF_ERROR(UnmapSharedRegions());
  const size_t committed = size_bytes();
  for (const DirtyRun& run : dirty_->CollectAndClearDirtyRuns()) {
    if (run.offset >= committed) {
      break;  // runs are ascending; the rest lie past the private prefix
    }
    const size_t end = std::min(run.offset + run.len, committed);
    const size_t copy_end = std::min(end, std::max(run.offset, len));
    if (copy_end > run.offset) {
      std::memcpy(base_ + run.offset, src + run.offset, copy_end - run.offset);
    }
    if (end > copy_end) {
      std::memset(base_ + copy_end, 0, end - copy_end);
    }
  }
  return OkStatus();
}

Status LinearMemory::RestoreCopyOnWrite(int fd, size_t len) {
  FAASM_RETURN_IF_ERROR(UnmapSharedRegions());
  const size_t mapped_len = RoundUpTo(len, kHostPageBytes);
  const size_t needed_pages = RoundUpTo(len, kWasmPageBytes) / kWasmPageBytes;
  if (needed_pages > size_pages_) {
    if (Grow(static_cast<uint32_t>(needed_pages - size_pages_)) == UINT32_MAX) {
      return ResourceExhausted("RestoreCopyOnWrite: memory limit exceeded");
    }
  }
  void* mapped = mmap(base_, mapped_len, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_FIXED, fd, 0);
  if (mapped == MAP_FAILED) {
    return Internal(std::string("RestoreCopyOnWrite mmap failed: ") + std::strerror(errno));
  }
  // Zero the gap between the snapshot and the end of committed memory so no
  // state from a previous invocation leaks past the snapshot boundary.
  if (mapped_len < size_bytes()) {
    std::memset(base_ + mapped_len, 0, size_bytes() - mapped_len);
  }
  dirty_->ClearDirty();
  return OkStatus();
}

}  // namespace faasm
