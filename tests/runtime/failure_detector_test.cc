// FailureDetector unit tests (ISSUE 9): the three-state machine in
// isolation — a bare InProcNetwork plus the virtual clock, heartbeats sent
// by hand, sweeps driven explicitly. The cluster-level end-to-end story
// (CrashHost + autonomous recovery) lives in crash_detection_test.cc.
#include "runtime/failure_detector.h"

#include <gtest/gtest.h>

#include "kvs/router.h"
#include "sim/sim_clock.h"

namespace faasm {
namespace {

NetworkConfig NoLatency() {
  NetworkConfig config;
  config.charge_latency = false;
  return config;
}

TEST(FailureDetectorTest, HeartbeatWireFormatRoundTrips) {
  EXPECT_EQ(DecodeHeartbeat(EncodeHeartbeat("host-7")), "host-7");
  EXPECT_EQ(DecodeHeartbeat(Bytes{}), "");
  EXPECT_EQ(DecodeHeartbeat(BytesFromString("hb ")), "");  // tag, no host
  EXPECT_EQ(DecodeHeartbeat(BytesFromString("xx host-1")), "");
}

TEST(FailureDetectorTest, SteadyHeartbeatsKeepHostAliveIndefinitely) {
  SimExecutor executor;
  InProcNetwork network(&executor.clock(), NoLatency());
  FailureDetectorConfig config;
  int deaths = 0;
  FailureDetector detector(&network, &executor.clock(), config,
                           [&](const std::string&) { ++deaths; });
  network.RegisterEndpoint("host-0", [](const Bytes&) { return Bytes{}; });

  executor.Spawn([&] {
    detector.Track("host-0");
    // Run well past several suspicion windows; each beat refreshes last-seen.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(network.Send("host-0", config.endpoint, EncodeHeartbeat("host-0")).ok());
      executor.clock().SleepFor(config.heartbeat_interval_ns);
      detector.Sweep();
    }
    EXPECT_EQ(detector.HealthOf("host-0"), HostHealth::kAlive);
    EXPECT_GE(detector.heartbeats_seen(), 10u);
    EXPECT_EQ(detector.suspicions(), 0u);
  });
  executor.JoinAll();
  EXPECT_EQ(deaths, 0);
  EXPECT_EQ(detector.death_count(), 0u);
}

TEST(FailureDetectorTest, CrashIsSuspectedProbedAndConfirmedExactlyOnce) {
  SimExecutor executor;
  InProcNetwork network(&executor.clock(), NoLatency());
  FailureDetectorConfig config;
  std::vector<std::string> handled;
  FailureDetector detector(&network, &executor.clock(), config,
                           [&](const std::string& host) { handled.push_back(host); });
  // The host's endpoint is NEVER registered: to the detector that is a
  // crash — the probe has nothing to answer it.

  executor.Spawn([&] {
    detector.Track("host-0");
    const TimeNs tracked_at = executor.clock().Now();

    // Inside the suspicion window, silence is tolerated.
    executor.clock().SleepFor(config.suspicion_timeout_ns / 2);
    detector.Sweep();
    EXPECT_EQ(detector.HealthOf("host-0"), HostHealth::kAlive);
    EXPECT_EQ(detector.death_count(), 0u);

    // Past it, one sweep suspects, probes, and confirms.
    executor.clock().SleepFor(config.suspicion_timeout_ns);
    detector.Sweep();
    EXPECT_EQ(detector.HealthOf("host-0"), HostHealth::kDead);
    EXPECT_EQ(detector.suspicions(), 1u);
    ASSERT_EQ(detector.death_count(), 1u);
    const std::vector<DeathRecord> deaths = detector.deaths();
    ASSERT_EQ(deaths.size(), 1u);
    EXPECT_EQ(deaths[0].host, "host-0");
    EXPECT_FALSE(deaths[0].hinted);
    EXPECT_GE(deaths[0].confirmed_at_ns, tracked_at + config.suspicion_timeout_ns);

    // Dead is terminal: a zombie's late heartbeat resurrects nothing and
    // the handler never fires twice.
    network.RegisterEndpoint("host-0", [](const Bytes&) { return Bytes{}; });
    ASSERT_TRUE(network.Send("host-0", config.endpoint, EncodeHeartbeat("host-0")).ok());
    executor.clock().SleepFor(config.suspicion_timeout_ns);
    detector.Sweep();
    EXPECT_EQ(detector.HealthOf("host-0"), HostHealth::kDead);
    EXPECT_EQ(detector.death_count(), 1u);
  });
  executor.JoinAll();
  EXPECT_EQ(handled, std::vector<std::string>{"host-0"});
}

TEST(FailureDetectorTest, SlowHostClearsSuspicionWithoutFailover) {
  // The false-positive case the probe exists for: heartbeats stop (a stalled
  // publisher) but the host still answers RPCs — suspicion must clear, and
  // the death handler must never run.
  SimExecutor executor;
  InProcNetwork network(&executor.clock(), NoLatency());
  FailureDetectorConfig config;
  int deaths = 0;
  FailureDetector detector(&network, &executor.clock(), config,
                           [&](const std::string&) { ++deaths; });
  network.RegisterEndpoint("host-0", [](const Bytes&) { return Bytes{}; });

  executor.Spawn([&] {
    detector.Track("host-0");
    executor.clock().SleepFor(2 * config.suspicion_timeout_ns);
    detector.Sweep();  // suspects AND probes in the same sweep
    EXPECT_EQ(detector.HealthOf("host-0"), HostHealth::kAlive);
    EXPECT_EQ(detector.suspicions(), 1u);
    EXPECT_EQ(detector.false_suspicions(), 1u);
    EXPECT_EQ(detector.death_count(), 0u);

    // The probe restarted the silence window: the next sweep inside the new
    // window does not re-suspect.
    executor.clock().SleepFor(config.suspicion_timeout_ns / 2);
    detector.Sweep();
    EXPECT_EQ(detector.suspicions(), 1u);
  });
  executor.JoinAll();
  EXPECT_EQ(deaths, 0);
}

TEST(FailureDetectorTest, ClientHintTriggersProbeBeforeTheTimeout) {
  // Client evidence (a kUnavailable bounce) schedules the corroborating
  // probe on the NEXT sweep: a hinted crash is confirmed long before the
  // heartbeat timeout would have noticed the silence.
  SimExecutor executor;
  InProcNetwork network(&executor.clock(), NoLatency());
  FailureDetectorConfig config;
  FailureDetector detector(&network, &executor.clock(), config, nullptr);

  executor.Spawn([&] {
    detector.Track("host-0");  // endpoint never registered: crashed
    const TimeNs crashed_at = executor.clock().Now();
    // Both endpoint spellings a client would report resolve to the host.
    detector.ReportSuspicion(ShardMap::EndpointForHost("host-0"));
    detector.ReportSuspicion("rep:host-0");
    EXPECT_EQ(detector.hints(), 1u);  // one host, hinted once

    executor.clock().SleepFor(kMillisecond);  // far inside the timeout
    detector.Sweep();
    ASSERT_EQ(detector.death_count(), 1u);
    const std::vector<DeathRecord> deaths = detector.deaths();
    EXPECT_TRUE(deaths[0].hinted);
    EXPECT_LT(deaths[0].confirmed_at_ns - crashed_at, config.suspicion_timeout_ns);
  });
  executor.JoinAll();
}

TEST(FailureDetectorTest, ForgetDisarmsMonitoring) {
  // Graceful removal calls Forget BEFORE the host stops heartbeating;
  // afterwards unbounded silence must not read as a crash.
  SimExecutor executor;
  InProcNetwork network(&executor.clock(), NoLatency());
  FailureDetectorConfig config;
  int deaths = 0;
  FailureDetector detector(&network, &executor.clock(), config,
                           [&](const std::string&) { ++deaths; });

  executor.Spawn([&] {
    detector.Track("host-0");
    detector.Forget("host-0");
    executor.clock().SleepFor(4 * config.suspicion_timeout_ns);
    detector.Sweep();
    EXPECT_EQ(detector.death_count(), 0u);
    // Hints for untracked hosts are dropped, not resurrected into state.
    detector.ReportSuspicion("kvs:host-0");
    EXPECT_EQ(detector.hints(), 0u);
    detector.Sweep();
    EXPECT_EQ(detector.death_count(), 0u);
  });
  executor.JoinAll();
  EXPECT_EQ(deaths, 0);
}

}  // namespace
}  // namespace faasm
