#include "sim/sim_clock.h"

#include <gtest/gtest.h>

#include <atomic>

#include "sim/cpu_model.h"

namespace faasm {
namespace {

TEST(SimClockTest, SingleThreadSleepAdvances) {
  SimExecutor executor;
  TimeNs observed = -1;
  executor.Spawn([&] {
    executor.clock().SleepFor(5 * kSecond);
    observed = executor.clock().Now();
  });
  executor.JoinAll();
  EXPECT_EQ(observed, 5 * kSecond);
}

TEST(SimClockTest, VirtualTimeIsInstantInRealTime) {
  SimExecutor executor;
  Stopwatch wall;
  executor.Spawn([&] { executor.clock().SleepFor(3600 * kSecond); });  // one virtual hour
  executor.JoinAll();
  EXPECT_LT(wall.ElapsedNs(), kSecond);  // well under a real second
}

TEST(SimClockTest, ParallelSleepersOverlapInVirtualTime) {
  SimExecutor executor;
  std::atomic<TimeNs> end_a{0};
  std::atomic<TimeNs> end_b{0};
  {
    SimClock::Hold hold(executor.clock());
    executor.Spawn([&] {
      executor.clock().SleepFor(10 * kSecond);
      end_a = executor.clock().Now();
    });
    executor.Spawn([&] {
      executor.clock().SleepFor(10 * kSecond);
      end_b = executor.clock().Now();
    });
  }
  executor.JoinAll();
  // Both finish at t=10s: they overlapped rather than serialised.
  EXPECT_EQ(end_a.load(), 10 * kSecond);
  EXPECT_EQ(end_b.load(), 10 * kSecond);
}

TEST(SimClockTest, OrderingOfStaggeredDeadlines) {
  SimExecutor executor;
  std::vector<int> order;
  std::mutex order_mutex;
  {
    // Keep the clock from advancing while this (unregistered) thread is
    // still spawning activities.
    SimClock::Hold hold(executor.clock());
    for (int i = 3; i >= 1; --i) {
      executor.Spawn([&, i] {
        executor.clock().SleepFor(i * kSecond);
        std::lock_guard<std::mutex> guard(order_mutex);
        order.push_back(i);
      });
    }
  }
  executor.JoinAll();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimClockTest, WaitForPredicate) {
  SimExecutor executor;
  std::atomic<bool> flag{false};
  std::atomic<TimeNs> waiter_done{0};
  {
    SimClock::Hold hold(executor.clock());
    executor.Spawn([&] {
      executor.clock().SleepFor(2 * kSecond);
      flag = true;
    });
    executor.Spawn([&] {
      const bool ok = executor.clock().WaitFor([&] { return flag.load(); });
      EXPECT_TRUE(ok);
      waiter_done = executor.clock().Now();
    });
  }
  executor.JoinAll();
  EXPECT_GE(waiter_done.load(), 2 * kSecond);
  EXPECT_LT(waiter_done.load(), 2 * kSecond + 10 * kMillisecond);
}

TEST(SimClockTest, WaitForDeadlineExpires) {
  SimExecutor executor;
  bool result = true;
  executor.Spawn([&] {
    result = executor.clock().WaitFor([] { return false; }, kMillisecond, 100 * kMillisecond);
  });
  executor.JoinAll();
  EXPECT_FALSE(result);
}

TEST(SimClockTest, NestedSpawnsParticipate) {
  SimExecutor executor;
  std::atomic<TimeNs> child_end{0};
  executor.Spawn([&] {
    executor.clock().SleepFor(kSecond);
    executor.Spawn([&] {
      executor.clock().SleepFor(kSecond);
      child_end = executor.clock().Now();
    });
  });
  executor.JoinAll();  // loops until nested spawns are drained
  EXPECT_EQ(child_end.load(), 2 * kSecond);
}

TEST(CpuModelTest, UndersubscribedRunsAtFullSpeed) {
  SimExecutor executor;
  HostCpuModel cpu(&executor.clock(), 4);
  TimeNs elapsed = 0;
  executor.Spawn([&] {
    HostCpuModel::Running running(cpu);
    const TimeNs start = executor.clock().Now();
    cpu.Charge(100 * kMillisecond);
    elapsed = executor.clock().Now() - start;
  });
  executor.JoinAll();
  EXPECT_EQ(elapsed, 100 * kMillisecond);
}

TEST(CpuModelTest, OversubscriptionSlowsEveryone) {
  SimExecutor executor;
  HostCpuModel cpu(&executor.clock(), 1);
  std::atomic<TimeNs> end_time{0};
  for (int i = 0; i < 4; ++i) {
    executor.Spawn([&] {
      HostCpuModel::Running running(cpu);
      cpu.Charge(100 * kMillisecond);
      TimeNs now = executor.clock().Now();
      TimeNs prev = end_time.load();
      while (now > prev && !end_time.compare_exchange_weak(prev, now)) {
      }
    });
  }
  executor.JoinAll();
  // 4 runners on 1 core: each 100 ms charge stretches to ~400 ms.
  EXPECT_GE(end_time.load(), 350 * kMillisecond);
}

}  // namespace
}  // namespace faasm
