// TokenBucket: per-Faaslet traffic shaping. The paper shapes each Faaslet's
// virtual network interface with tc; this is the userspace equivalent the
// simulated interfaces enforce (§3.1 "secure and fair network access").
#ifndef FAASM_NET_TOKEN_BUCKET_H_
#define FAASM_NET_TOKEN_BUCKET_H_

#include <cstdint>

#include "common/clock.h"

namespace faasm {

class TokenBucket {
 public:
  // `rate_bytes_per_sec` refills the bucket; `burst_bytes` is its capacity.
  TokenBucket(double rate_bytes_per_sec, double burst_bytes)
      : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {}

  // Attempts to consume `bytes` at time `now_ns`; returns true on success.
  bool TryConsume(double bytes, TimeNs now_ns);

  // Returns the earliest time at which a transfer of `bytes` may proceed.
  // Requests larger than the burst can never be satisfied from the bucket,
  // so they are clamped: the bucket drains its full burst and the remainder
  // is charged as additional (rate-paced) wait time. The returned time is
  // therefore always reachable — callers waiting on it never spin forever.
  TimeNs NextAvailable(double bytes, TimeNs now_ns);

  double tokens() const { return tokens_; }
  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(TimeNs now_ns);

  double rate_;
  double burst_;
  double tokens_;
  TimeNs last_refill_ns_ = 0;
};

}  // namespace faasm

#endif  // FAASM_NET_TOKEN_BUCKET_H_
