#include "workloads/kernels.h"

#include <cmath>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/instance.h"

namespace faasm {

namespace {

using wasm::BlockType;
using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::Op;
using wasm::ValType;

// Guest array layout (f64 arrays; n <= 256 so n*n*8 <= 512 KiB per matrix).
constexpr uint32_t kAOff = 0x000000;
constexpr uint32_t kBOff = 0x100000;
constexpr uint32_t kCOff = 0x200000;
constexpr uint32_t kXOff = 0x300000;
constexpr uint32_t kYOff = 0x310000;
constexpr uint32_t kTOff = 0x320000;
constexpr uint32_t kMemPages = 56;  // 3.5 MiB

constexpr int kStencilSteps = 20;

// Shared scaffolding: a module with one exported function "run": (i32)->f64.
struct KernelModule {
  ModuleBuilder builder;
  FunctionBuilder* f = nullptr;
  uint32_t n = 0;  // param local index
  uint32_t i, j, k, acc;

  KernelModule() {
    builder.AddMemory(kMemPages, kMemPages);
    f = &builder.AddFunction("run", {ValType::kI32}, {ValType::kF64});
    n = 0;
    i = f->AddLocal(ValType::kI32);
    j = f->AddLocal(ValType::kI32);
    k = f->AddLocal(ValType::kI32);
    acc = f->AddLocal(ValType::kF64);
  }

  // Pushes (idx_on_stack * 8 + base) — an f64 element address.
  void Addr8(uint32_t base) {
    f->I32Const(8);
    f->Emit(Op::kI32Mul);
    if (base != 0) {
      f->I32Const(static_cast<int32_t>(base));
      f->Emit(Op::kI32Add);
    }
  }

  // Pushes local a * n + local b (row-major index).
  void RowMajor(uint32_t a, uint32_t b) {
    f->LocalGet(a);
    f->LocalGet(n);
    f->Emit(Op::kI32Mul);
    f->LocalGet(b);
    f->Emit(Op::kI32Add);
  }

  // Pushes f64 value of M[a*n+b].
  void LoadMat(uint32_t base, uint32_t a, uint32_t b) {
    RowMajor(a, b);
    Addr8(base);
    f->Load(Op::kF64Load);
  }

  // Pushes f64 value of V[a].
  void LoadVec(uint32_t base, uint32_t a) {
    f->LocalGet(a);
    Addr8(base);
    f->Load(Op::kF64Load);
  }

  // Emits: init value = fmod(i*mul_a + j*mul_b + add, mod) / mod for matrix
  // entry; uses i32 arithmetic then converts (identical in the native twin).
  void PushInitValue(uint32_t a, uint32_t b, int32_t mul_b, int32_t add, int32_t mod) {
    f->LocalGet(a);
    if (b != UINT32_MAX) {
      f->LocalGet(b);
      f->I32Const(mul_b);
      f->Emit(Op::kI32Mul);
      f->Emit(Op::kI32Add);
    }
    f->I32Const(add);
    f->Emit(Op::kI32Add);
    f->I32Const(mod);
    f->Emit(Op::kI32RemS);
    f->Emit(Op::kF64ConvertI32S);
    f->I32Const(mod);
    f->Emit(Op::kF64ConvertI32S);
    f->Emit(Op::kF64Div);
  }

  // Initialises matrix at `base` with the standard pattern.
  void InitMatrix(uint32_t base, int32_t mul_b, int32_t add, int32_t mod) {
    f->ForLocalLimit(i, 0, n, [&] {
      f->ForLocalLimit(j, 0, n, [&] {
        RowMajor(i, j);
        Addr8(base);
        PushInitValue(i, j, mul_b, add, mod);
        f->Store(Op::kF64Store);
      });
    });
  }

  void InitVector(uint32_t base, int32_t add, int32_t mod) {
    f->ForLocalLimit(i, 0, n, [&] {
      f->LocalGet(i);
      Addr8(base);
      PushInitValue(i, UINT32_MAX, 0, add, mod);
      f->Store(Op::kF64Store);
    });
  }

  void ZeroVector(uint32_t base) {
    f->ForLocalLimit(i, 0, n, [&] {
      f->LocalGet(i);
      Addr8(base);
      f->F64Const(0.0);
      f->Store(Op::kF64Store);
    });
  }

  // Sum of vector at `base` into acc; leaves acc pushed as the result.
  void ChecksumVector(uint32_t base) {
    f->F64Const(0.0);
    f->LocalSet(acc);
    f->ForLocalLimit(i, 0, n, [&] {
      f->LocalGet(acc);
      LoadVec(base, i);
      f->Emit(Op::kF64Add);
      f->LocalSet(acc);
    });
    f->LocalGet(acc);
  }

  // Sum of matrix at `base`.
  void ChecksumMatrix(uint32_t base) {
    f->F64Const(0.0);
    f->LocalSet(acc);
    f->ForLocalLimit(i, 0, n, [&] {
      f->ForLocalLimit(j, 0, n, [&] {
        f->LocalGet(acc);
        LoadMat(base, i, j);
        f->Emit(Op::kF64Add);
        f->LocalSet(acc);
      });
    });
    f->LocalGet(acc);
  }

  Result<std::shared_ptr<const wasm::CompiledModule>> Finish() {
    f->End();
    FAASM_ASSIGN_OR_RETURN(wasm::Module module, wasm::DecodeModule(builder.Build()));
    return wasm::CompileModule(std::move(module));
  }
};

// Native-side init helpers mirroring PushInitValue exactly.
double InitVal(int64_t a, int64_t b, int64_t mul_b, int64_t add, int64_t mod) {
  const int64_t v = (a + b * mul_b + add) % mod;
  return static_cast<double>(static_cast<int32_t>(v)) / static_cast<double>(mod);
}

void NativeInitMatrix(std::vector<double>& m, uint32_t n, int32_t mul_b, int32_t add,
                      int32_t mod) {
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      m[static_cast<size_t>(a) * n + b] = InitVal(a, b, mul_b, add, mod);
    }
  }
}

void NativeInitVector(std::vector<double>& v, uint32_t n, int32_t add, int32_t mod) {
  for (uint32_t a = 0; a < n; ++a) {
    v[a] = InitVal(a, 0, 0, add, mod);
  }
}

// ---- gemm: C = A * B ---------------------------------------------------------

double GemmNative(uint32_t n) {
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> b(static_cast<size_t>(n) * n);
  std::vector<double> c(static_cast<size_t>(n) * n, 0.0);
  NativeInitMatrix(a, n, 3, 1, 13);
  NativeInitMatrix(b, n, 5, 2, 17);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      double acc = 0;
      for (uint32_t k = 0; k < n; ++k) {
        acc += a[static_cast<size_t>(i) * n + k] * b[static_cast<size_t>(k) * n + j];
      }
      c[static_cast<size_t>(i) * n + j] = acc;
    }
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      sum += c[static_cast<size_t>(i) * n + j];
    }
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> GemmWasm() {
  KernelModule m;
  auto& f = *m.f;
  m.InitMatrix(kAOff, 3, 1, 13);
  m.InitMatrix(kBOff, 5, 2, 17);
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.ForLocalLimit(m.j, 0, m.n, [&] {
      f.F64Const(0.0);
      f.LocalSet(m.acc);
      f.ForLocalLimit(m.k, 0, m.n, [&] {
        f.LocalGet(m.acc);
        m.LoadMat(kAOff, m.i, m.k);
        m.LoadMat(kBOff, m.k, m.j);
        f.Emit(Op::kF64Mul);
        f.Emit(Op::kF64Add);
        f.LocalSet(m.acc);
      });
      m.RowMajor(m.i, m.j);
      m.Addr8(kCOff);
      f.LocalGet(m.acc);
      f.Store(Op::kF64Store);
    });
  });
  m.ChecksumMatrix(kCOff);
  return m.Finish();
}

// ---- atax: y = A^T (A x) --------------------------------------------------------

double AtaxNative(uint32_t n) {
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> x(n);
  std::vector<double> t(n);
  std::vector<double> y(n, 0.0);
  NativeInitMatrix(a, n, 7, 3, 19);
  NativeInitVector(x, n, 1, 11);
  for (uint32_t i = 0; i < n; ++i) {
    double acc = 0;
    for (uint32_t j = 0; j < n; ++j) {
      acc += a[static_cast<size_t>(i) * n + j] * x[j];
    }
    t[i] = acc;
  }
  for (uint32_t j = 0; j < n; ++j) {
    double acc = 0;
    for (uint32_t i = 0; i < n; ++i) {
      acc += a[static_cast<size_t>(i) * n + j] * t[i];
    }
    y[j] = acc;
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += y[i];
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> AtaxWasm() {
  KernelModule m;
  auto& f = *m.f;
  m.InitMatrix(kAOff, 7, 3, 19);
  m.InitVector(kXOff, 1, 11);
  // t = A x
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.F64Const(0.0);
    f.LocalSet(m.acc);
    f.ForLocalLimit(m.j, 0, m.n, [&] {
      f.LocalGet(m.acc);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kXOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.LocalSet(m.acc);
    });
    f.LocalGet(m.i);
    m.Addr8(kTOff);
    f.LocalGet(m.acc);
    f.Store(Op::kF64Store);
  });
  // y = A^T t   (outer loop over columns j)
  f.ForLocalLimit(m.j, 0, m.n, [&] {
    f.F64Const(0.0);
    f.LocalSet(m.acc);
    f.ForLocalLimit(m.i, 0, m.n, [&] {
      f.LocalGet(m.acc);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kTOff, m.i);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.LocalSet(m.acc);
    });
    f.LocalGet(m.j);
    m.Addr8(kYOff);
    f.LocalGet(m.acc);
    f.Store(Op::kF64Store);
  });
  m.ChecksumVector(kYOff);
  return m.Finish();
}

// ---- bicg: s = A^T r ; q = A p ---------------------------------------------------

double BicgNative(uint32_t n) {
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> r(n);
  std::vector<double> p(n);
  std::vector<double> s(n, 0.0);
  std::vector<double> q(n, 0.0);
  NativeInitMatrix(a, n, 11, 5, 23);
  NativeInitVector(r, n, 2, 7);
  NativeInitVector(p, n, 4, 9);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      s[j] += a[static_cast<size_t>(i) * n + j] * r[i];
      q[i] += a[static_cast<size_t>(i) * n + j] * p[j];
    }
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += s[i] + q[i];
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> BicgWasm() {
  KernelModule m;
  auto& f = *m.f;
  m.InitMatrix(kAOff, 11, 5, 23);
  m.InitVector(kXOff, 2, 7);  // r
  m.InitVector(kYOff, 4, 9);  // p
  m.ZeroVector(kTOff);        // s
  m.ZeroVector(kCOff);        // q (reusing matrix slot as a vector)
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.ForLocalLimit(m.j, 0, m.n, [&] {
      // s[j] += A[i][j] * r[i]
      f.LocalGet(m.j);
      m.Addr8(kTOff);
      m.LoadVec(kTOff, m.j);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kXOff, m.i);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.Store(Op::kF64Store);
      // q[i] += A[i][j] * p[j]
      f.LocalGet(m.i);
      m.Addr8(kCOff);
      m.LoadVec(kCOff, m.i);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kYOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.Store(Op::kF64Store);
    });
  });
  // checksum = sum(s) + sum(q)
  f.F64Const(0.0);
  f.LocalSet(m.acc);
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.LocalGet(m.acc);
    m.LoadVec(kTOff, m.i);
    f.Emit(Op::kF64Add);
    m.LoadVec(kCOff, m.i);
    f.Emit(Op::kF64Add);
    f.LocalSet(m.acc);
  });
  f.LocalGet(m.acc);
  return m.Finish();
}

// ---- mvt: x1 += A y1 ; x2 += A^T y2 -------------------------------------------------

double MvtNative(uint32_t n) {
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y1(n);
  std::vector<double> y2(n);
  NativeInitMatrix(a, n, 13, 7, 29);
  NativeInitVector(x1, n, 3, 31);
  NativeInitVector(x2, n, 8, 37);
  NativeInitVector(y1, n, 5, 41);
  NativeInitVector(y2, n, 9, 43);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      x1[i] += a[static_cast<size_t>(i) * n + j] * y1[j];
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      x2[i] += a[static_cast<size_t>(j) * n + i] * y2[j];
    }
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += x1[i] + x2[i];
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> MvtWasm() {
  KernelModule m;
  auto& f = *m.f;
  m.InitMatrix(kAOff, 13, 7, 29);
  m.InitVector(kXOff, 3, 31);       // x1
  m.InitVector(kYOff, 8, 37);       // x2
  m.InitVector(kTOff, 5, 41);       // y1
  m.InitVector(kCOff, 9, 43);       // y2
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.ForLocalLimit(m.j, 0, m.n, [&] {
      f.LocalGet(m.i);
      m.Addr8(kXOff);
      m.LoadVec(kXOff, m.i);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kTOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.Store(Op::kF64Store);
    });
  });
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.ForLocalLimit(m.j, 0, m.n, [&] {
      f.LocalGet(m.i);
      m.Addr8(kYOff);
      m.LoadVec(kYOff, m.i);
      m.LoadMat(kAOff, m.j, m.i);
      m.LoadVec(kCOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.Store(Op::kF64Store);
    });
  });
  f.F64Const(0.0);
  f.LocalSet(m.acc);
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.LocalGet(m.acc);
    m.LoadVec(kXOff, m.i);
    f.Emit(Op::kF64Add);
    m.LoadVec(kYOff, m.i);
    f.Emit(Op::kF64Add);
    f.LocalSet(m.acc);
  });
  f.LocalGet(m.acc);
  return m.Finish();
}

// ---- gesummv: y = A x + B x ----------------------------------------------------------

double GesummvNative(uint32_t n) {
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> b(static_cast<size_t>(n) * n);
  std::vector<double> x(n);
  std::vector<double> y(n);
  NativeInitMatrix(a, n, 17, 2, 31);
  NativeInitMatrix(b, n, 19, 4, 37);
  NativeInitVector(x, n, 6, 13);
  for (uint32_t i = 0; i < n; ++i) {
    double acc_a = 0;
    double acc_b = 0;
    for (uint32_t j = 0; j < n; ++j) {
      acc_a += a[static_cast<size_t>(i) * n + j] * x[j];
      acc_b += b[static_cast<size_t>(i) * n + j] * x[j];
    }
    y[i] = acc_a + acc_b;
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += y[i];
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> GesummvWasm() {
  KernelModule m;
  auto& f = *m.f;
  const uint32_t acc_b = f.AddLocal(ValType::kF64);
  m.InitMatrix(kAOff, 17, 2, 31);
  m.InitMatrix(kBOff, 19, 4, 37);
  m.InitVector(kXOff, 6, 13);
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    f.F64Const(0.0);
    f.LocalSet(m.acc);
    f.F64Const(0.0);
    f.LocalSet(acc_b);
    f.ForLocalLimit(m.j, 0, m.n, [&] {
      f.LocalGet(m.acc);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kXOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.LocalSet(m.acc);
      f.LocalGet(acc_b);
      m.LoadMat(kBOff, m.i, m.j);
      m.LoadVec(kXOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Add);
      f.LocalSet(acc_b);
    });
    f.LocalGet(m.i);
    m.Addr8(kYOff);
    f.LocalGet(m.acc);
    f.LocalGet(acc_b);
    f.Emit(Op::kF64Add);
    f.Store(Op::kF64Store);
  });
  m.ChecksumVector(kYOff);
  return m.Finish();
}

// ---- jacobi-1d: t-step 3-point stencil -------------------------------------------------

double Jacobi1dNative(uint32_t n) {
  std::vector<double> a(n);
  std::vector<double> b(n);
  NativeInitVector(a, n, 2, 19);
  NativeInitVector(b, n, 3, 23);
  for (int t = 0; t < kStencilSteps; ++t) {
    for (uint32_t i = 1; i + 1 < n; ++i) {
      b[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
    }
    for (uint32_t i = 1; i + 1 < n; ++i) {
      a[i] = (b[i - 1] + b[i] + b[i + 1]) / 3.0;
    }
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += a[i];
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> Jacobi1dWasm() {
  KernelModule m;
  auto& f = *m.f;
  const uint32_t limit = f.AddLocal(ValType::kI32);
  m.InitVector(kXOff, 2, 19);  // a
  m.InitVector(kYOff, 3, 23);  // b
  f.LocalGet(m.n);
  f.I32Const(1);
  f.Emit(Op::kI32Sub);
  f.LocalSet(limit);

  auto stencil = [&](uint32_t src, uint32_t dst) {
    f.ForLocalLimit(m.i, 1, limit, [&] {
      f.LocalGet(m.i);
      m.Addr8(dst);
      // (src[i-1] + src[i] + src[i+1]) / 3
      f.LocalGet(m.i);
      f.I32Const(1);
      f.Emit(Op::kI32Sub);
      m.Addr8(src);
      f.Load(Op::kF64Load);
      m.LoadVec(src, m.i);
      f.Emit(Op::kF64Add);
      f.LocalGet(m.i);
      f.I32Const(1);
      f.Emit(Op::kI32Add);
      m.Addr8(src);
      f.Load(Op::kF64Load);
      f.Emit(Op::kF64Add);
      f.F64Const(3.0);
      f.Emit(Op::kF64Div);
      f.Store(Op::kF64Store);
    });
  };

  f.ForConstLimit(m.k, 0, kStencilSteps, [&] {
    stencil(kXOff, kYOff);
    stencil(kYOff, kXOff);
  });
  m.ChecksumVector(kXOff);
  return m.Finish();
}

// ---- jacobi-2d: t-step 5-point stencil ---------------------------------------------------

double Jacobi2dNative(uint32_t n) {
  std::vector<double> a(static_cast<size_t>(n) * n);
  std::vector<double> b(static_cast<size_t>(n) * n);
  NativeInitMatrix(a, n, 3, 2, 11);
  NativeInitMatrix(b, n, 5, 1, 13);
  auto at = [n](std::vector<double>& m2, uint32_t r, uint32_t c) -> double& {
    return m2[static_cast<size_t>(r) * n + c];
  };
  for (int t = 0; t < kStencilSteps; ++t) {
    for (uint32_t i = 1; i + 1 < n; ++i) {
      for (uint32_t j = 1; j + 1 < n; ++j) {
        at(b, i, j) = 0.2 * (at(a, i, j) + at(a, i, j - 1) + at(a, i, j + 1) + at(a, i - 1, j) +
                             at(a, i + 1, j));
      }
    }
    for (uint32_t i = 1; i + 1 < n; ++i) {
      for (uint32_t j = 1; j + 1 < n; ++j) {
        at(a, i, j) = 0.2 * (at(b, i, j) + at(b, i, j - 1) + at(b, i, j + 1) + at(b, i - 1, j) +
                             at(b, i + 1, j));
      }
    }
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      sum += a[static_cast<size_t>(i) * n + j];
    }
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> Jacobi2dWasm() {
  KernelModule m;
  auto& f = *m.f;
  const uint32_t limit = f.AddLocal(ValType::kI32);
  m.InitMatrix(kAOff, 3, 2, 11);
  m.InitMatrix(kBOff, 5, 1, 13);
  f.LocalGet(m.n);
  f.I32Const(1);
  f.Emit(Op::kI32Sub);
  f.LocalSet(limit);

  // Pushes src[(i+di)*n + (j+dj)].
  auto load_neighbour = [&](uint32_t src, int32_t di, int32_t dj) {
    f.LocalGet(m.i);
    if (di != 0) {
      f.I32Const(di);
      f.Emit(Op::kI32Add);
    }
    f.LocalGet(m.n);
    f.Emit(Op::kI32Mul);
    f.LocalGet(m.j);
    f.Emit(Op::kI32Add);
    if (dj != 0) {
      f.I32Const(dj);
      f.Emit(Op::kI32Add);
    }
    m.Addr8(src);
    f.Load(Op::kF64Load);
  };

  auto stencil = [&](uint32_t src, uint32_t dst) {
    f.ForLocalLimit(m.i, 1, limit, [&] {
      f.ForLocalLimit(m.j, 1, limit, [&] {
        m.RowMajor(m.i, m.j);
        m.Addr8(dst);
        f.F64Const(0.2);
        load_neighbour(src, 0, 0);
        load_neighbour(src, 0, -1);
        f.Emit(Op::kF64Add);
        load_neighbour(src, 0, 1);
        f.Emit(Op::kF64Add);
        load_neighbour(src, -1, 0);
        f.Emit(Op::kF64Add);
        load_neighbour(src, 1, 0);
        f.Emit(Op::kF64Add);
        f.Emit(Op::kF64Mul);
        f.Store(Op::kF64Store);
      });
    });
  };

  f.ForConstLimit(m.k, 0, kStencilSteps, [&] {
    stencil(kAOff, kBOff);
    stencil(kBOff, kAOff);
  });
  m.ChecksumMatrix(kAOff);
  return m.Finish();
}

// ---- trisolv: lower-triangular solve L x = b -------------------------------------------------

double TrisolvNative(uint32_t n) {
  std::vector<double> l(static_cast<size_t>(n) * n);
  std::vector<double> b(n);
  std::vector<double> x(n);
  NativeInitMatrix(l, n, 7, 11, 53);
  NativeInitVector(b, n, 3, 17);
  for (uint32_t i = 0; i < n; ++i) {
    l[static_cast<size_t>(i) * n + i] += 2.0;  // keep well conditioned
  }
  for (uint32_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (uint32_t j = 0; j < i; ++j) {
      acc -= l[static_cast<size_t>(i) * n + j] * x[j];
    }
    x[i] = acc / l[static_cast<size_t>(i) * n + i];
  }
  double sum = 0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += x[i];
  }
  return sum;
}

Result<std::shared_ptr<const wasm::CompiledModule>> TrisolvWasm() {
  KernelModule m;
  auto& f = *m.f;
  m.InitMatrix(kAOff, 7, 11, 53);
  m.InitVector(kXOff, 3, 17);  // b
  // L[i][i] += 2.0
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    m.RowMajor(m.i, m.i);
    m.Addr8(kAOff);
    m.LoadMat(kAOff, m.i, m.i);
    f.F64Const(2.0);
    f.Emit(Op::kF64Add);
    f.Store(Op::kF64Store);
  });
  f.ForLocalLimit(m.i, 0, m.n, [&] {
    // acc = b[i]
    m.LoadVec(kXOff, m.i);
    f.LocalSet(m.acc);
    f.ForLocalLimit(m.j, 0, m.i, [&] {
      f.LocalGet(m.acc);
      m.LoadMat(kAOff, m.i, m.j);
      m.LoadVec(kYOff, m.j);
      f.Emit(Op::kF64Mul);
      f.Emit(Op::kF64Sub);
      f.LocalSet(m.acc);
    });
    // x[i] = acc / L[i][i]
    f.LocalGet(m.i);
    m.Addr8(kYOff);
    f.LocalGet(m.acc);
    m.LoadMat(kAOff, m.i, m.i);
    f.Emit(Op::kF64Div);
    f.Store(Op::kF64Store);
  });
  m.ChecksumVector(kYOff);
  return m.Finish();
}

}  // namespace

const std::vector<Kernel>& PolybenchKernels() {
  static const std::vector<Kernel> kernels = {
      {"gemm", GemmNative, GemmWasm},
      {"atax", AtaxNative, AtaxWasm},
      {"bicg", BicgNative, BicgWasm},
      {"mvt", MvtNative, MvtWasm},
      {"gesummv", GesummvNative, GesummvWasm},
      {"jacobi-1d", Jacobi1dNative, Jacobi1dWasm},
      {"jacobi-2d", Jacobi2dNative, Jacobi2dWasm},
      {"trisolv", TrisolvNative, TrisolvWasm},
  };
  return kernels;
}

Result<double> RunKernelWasm(std::shared_ptr<const wasm::CompiledModule> module, uint32_t n) {
  FAASM_ASSIGN_OR_RETURN(auto instance, wasm::Instance::Create(std::move(module), nullptr));
  auto out = instance->CallExport("run", {wasm::MakeI32(n)});
  if (!out.ok()) {
    return out.status();
  }
  return out.value()[0].f64;
}

}  // namespace faasm
