// The Faaslet host interface (Table 2), exposed to wasm functions as imports
// under the "faasm" module. This layer operates outside guest memory safety
// and is therefore paranoid: every guest pointer/length pair is bounds
// checked against the Faaslet's linear memory before use, and every failure
// surfaces as a trap, never as undefined behaviour.
#include <cstring>

#include "core/faaslet.h"

namespace faasm {

namespace {

using wasm::HostFn;
using wasm::Instance;
using wasm::MakeI32;
using wasm::MakeI64;
using wasm::ValType;
using wasm::Value;

Result<std::string> GuestString(Faaslet& faaslet, uint32_t ptr, uint32_t len) {
  if (!faaslet.memory().InBounds(ptr, len)) {
    return OutOfRange("guest string out of bounds");
  }
  return std::string(reinterpret_cast<const char*>(faaslet.memory().base() + ptr), len);
}

Result<Bytes> GuestBytes(Faaslet& faaslet, uint32_t ptr, uint32_t len) {
  if (!faaslet.memory().InBounds(ptr, len)) {
    return OutOfRange("guest buffer out of bounds");
  }
  const uint8_t* base = faaslet.memory().base() + ptr;
  return Bytes(base, base + len);
}

// Copies up to buf_len bytes of `data` into the guest; returns bytes copied.
Result<uint32_t> CopyToGuest(Faaslet& faaslet, const Bytes& data, uint32_t ptr,
                             uint32_t buf_len) {
  const uint32_t n = static_cast<uint32_t>(std::min<size_t>(data.size(), buf_len));
  FAASM_RETURN_IF_ERROR(faaslet.memory().Write(ptr, data.data(), n));
  return n;
}

std::shared_ptr<StateKeyValue> LookupState(Faaslet& faaslet, const std::string& key) {
  return faaslet.state().Lookup(key);
}

}  // namespace

void RegisterHostInterface(Faaslet& faaslet, wasm::MapImportResolver& resolver) {
  Faaslet* f = &faaslet;
  const std::vector<ValType> i32 = {ValType::kI32};
  (void)i32;

  auto reg = [&resolver](const std::string& name, HostFn fn) {
    resolver.Register("faasm", name, std::move(fn));
  };

  // --- Calls -------------------------------------------------------------------
  reg("input_size", [f](Instance&, const Value*, size_t, Value* results) {
    results[0] = MakeI32(static_cast<uint32_t>(f->Input().size()));
    return OkStatus();
  });

  reg("read_input", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(uint32_t n, CopyToGuest(*f, f->Input(), args[0].i32, args[1].i32));
    results[0] = MakeI32(n);
    return OkStatus();
  });

  reg("write_output", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(Bytes output, GuestBytes(*f, args[0].i32, args[1].i32));
    f->WriteOutput(std::move(output));
    return OkStatus();
  });

  reg("chain_call", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string name, GuestString(*f, args[0].i32, args[1].i32));
    FAASM_ASSIGN_OR_RETURN(Bytes input, GuestBytes(*f, args[2].i32, args[3].i32));
    FAASM_ASSIGN_OR_RETURN(uint64_t id, f->ChainCall(name, std::move(input)));
    results[0] = MakeI64(id);
    return OkStatus();
  });

  reg("await_call", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(int code, f->AwaitCall(args[0].i64));
    results[0] = MakeI32(static_cast<uint32_t>(code));
    return OkStatus();
  });

  reg("get_call_output", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(Bytes output, f->GetCallOutput(args[0].i64));
    FAASM_ASSIGN_OR_RETURN(uint32_t n, CopyToGuest(*f, output, args[1].i32, args[2].i32));
    results[0] = MakeI32(n);
    return OkStatus();
  });

  // --- State ---------------------------------------------------------------------
  reg("get_state", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    FAASM_ASSIGN_OR_RETURN(uint32_t offset, f->MapStateIntoGuest(key, args[2].i32));
    results[0] = MakeI32(offset);
    return OkStatus();
  });

  reg("set_state", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    FAASM_ASSIGN_OR_RETURN(Bytes data, GuestBytes(*f, args[2].i32, args[3].i32));
    auto kv = LookupState(*f, key);
    FAASM_RETURN_IF_ERROR(kv->EnsureCapacity(data.size()));
    // WritableData may pull boundary pages, so take it before the local lock.
    uint8_t* dst = kv->WritableData(0, data.size());  // marks pages for delta push
    if (dst == nullptr) {
      return Internal("set_state: replica write failed");
    }
    kv->LockWrite();
    std::memcpy(dst, data.data(), data.size());
    kv->UnlockWrite();
    // Re-mark now that the bytes have landed, in case a concurrent push
    // collected the WritableData mark while the copy was in flight.
    kv->MarkDirty(0, data.size());
    return OkStatus();
  });

  reg("pull_state", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->Pull();
  });

  reg("push_state", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->Push();
  });

  reg("pull_state_offset", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->PullChunk(args[2].i32, args[3].i32);
  });

  reg("push_state_offset", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->PushChunk(args[2].i32, args[3].i32);
  });

  reg("append_state", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    FAASM_ASSIGN_OR_RETURN(Bytes data, GuestBytes(*f, args[2].i32, args[3].i32));
    return LookupState(*f, key)->Append(data);
  });

  reg("lock_state_read", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    LookupState(*f, key)->LockRead();
    return OkStatus();
  });
  reg("unlock_state_read", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    LookupState(*f, key)->UnlockRead();
    return OkStatus();
  });
  reg("lock_state_write", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    LookupState(*f, key)->LockWrite();
    return OkStatus();
  });
  reg("unlock_state_write", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    LookupState(*f, key)->UnlockWrite();
    return OkStatus();
  });

  reg("lock_state_global_read", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->LockGlobalRead();
  });
  reg("unlock_state_global_read", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->UnlockGlobalRead();
  });
  reg("lock_state_global_write", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->LockGlobalWrite();
  });
  reg("unlock_state_global_write", [f](Instance&, const Value* args, size_t, Value*) {
    FAASM_ASSIGN_OR_RETURN(std::string key, GuestString(*f, args[0].i32, args[1].i32));
    return LookupState(*f, key)->UnlockGlobalWrite();
  });

  // --- Memory ---------------------------------------------------------------------
  // sbrk(bytes): grows the private region by whole wasm pages; returns the
  // previous memory end in bytes. Fails (traps) past the function's limit.
  reg("sbrk", [f](Instance&, const Value* args, size_t, Value* results) {
    const uint32_t old_end = static_cast<uint32_t>(f->memory().size_bytes());
    const uint32_t bytes = args[0].i32;
    if (bytes > 0) {
      const uint32_t pages = (bytes + kWasmPageBytes - 1) / kWasmPageBytes;
      if (f->memory().Grow(pages) == UINT32_MAX) {
        return ResourceExhausted("sbrk: function memory limit exceeded");
      }
    }
    results[0] = MakeI32(old_end);
    return OkStatus();
  });

  // --- Networking ---------------------------------------------------------------------
  reg("socket", [f](Instance&, const Value*, size_t, Value* results) {
    results[0] = MakeI32(static_cast<uint32_t>(f->SocketOpen()));
    return OkStatus();
  });
  reg("connect", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string host, GuestString(*f, args[1].i32, args[2].i32));
    Status status = f->SocketConnect(static_cast<int>(args[0].i32), host);
    results[0] = MakeI32(status.ok() ? 0 : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("send", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(Bytes data, GuestBytes(*f, args[1].i32, args[2].i32));
    auto sent = f->SocketSend(static_cast<int>(args[0].i32), data.data(), data.size());
    if (!sent.ok()) {
      return sent.status();
    }
    results[0] = MakeI32(static_cast<uint32_t>(sent.value()));
    return OkStatus();
  });
  reg("recv", [f](Instance&, const Value* args, size_t, Value* results) {
    Bytes buffer(args[2].i32);
    auto received = f->SocketRecv(static_cast<int>(args[0].i32), buffer.data(), buffer.size());
    if (!received.ok()) {
      return received.status();
    }
    FAASM_RETURN_IF_ERROR(f->memory().Write(args[1].i32, buffer.data(), received.value()));
    results[0] = MakeI32(static_cast<uint32_t>(received.value()));
    return OkStatus();
  });
  reg("socket_close", [f](Instance&, const Value* args, size_t, Value* results) {
    results[0] = MakeI32(f->SocketClose(static_cast<int>(args[0].i32)).ok() ? 0
                                                                            : static_cast<uint32_t>(-1));
    return OkStatus();
  });

  // --- File I/O -----------------------------------------------------------------------
  reg("open", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string path, GuestString(*f, args[0].i32, args[1].i32));
    auto fd = f->vfs().Open(path, static_cast<int>(args[2].i32));
    results[0] = MakeI32(fd.ok() ? static_cast<uint32_t>(fd.value()) : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("read", [f](Instance&, const Value* args, size_t, Value* results) {
    Bytes buffer(args[2].i32);
    auto n = f->vfs().Read(static_cast<int>(args[0].i32), buffer.data(), buffer.size());
    if (!n.ok()) {
      return n.status();
    }
    FAASM_RETURN_IF_ERROR(f->memory().Write(args[1].i32, buffer.data(), n.value()));
    results[0] = MakeI32(static_cast<uint32_t>(n.value()));
    return OkStatus();
  });
  reg("write", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(Bytes data, GuestBytes(*f, args[1].i32, args[2].i32));
    auto n = f->vfs().Write(static_cast<int>(args[0].i32), data.data(), data.size());
    if (!n.ok()) {
      return n.status();
    }
    results[0] = MakeI32(static_cast<uint32_t>(n.value()));
    return OkStatus();
  });
  reg("close", [f](Instance&, const Value* args, size_t, Value* results) {
    results[0] =
        MakeI32(f->vfs().Close(static_cast<int>(args[0].i32)).ok() ? 0 : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("dup", [f](Instance&, const Value* args, size_t, Value* results) {
    auto fd = f->vfs().Dup(static_cast<int>(args[0].i32));
    results[0] = MakeI32(fd.ok() ? static_cast<uint32_t>(fd.value()) : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("seek", [f](Instance&, const Value* args, size_t, Value* results) {
    auto pos = f->vfs().Seek(static_cast<int>(args[0].i32), args[1].i32);
    results[0] =
        MakeI32(pos.ok() ? static_cast<uint32_t>(pos.value()) : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("stat_size", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string path, GuestString(*f, args[0].i32, args[1].i32));
    auto stat = f->vfs().StatPath(path);
    results[0] = MakeI32(stat.ok() ? static_cast<uint32_t>(stat.value().size)
                                   : static_cast<uint32_t>(-1));
    return OkStatus();
  });

  // --- Dynamic linking -------------------------------------------------------------------
  reg("dlopen", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string path, GuestString(*f, args[0].i32, args[1].i32));
    auto handle = f->DlOpen(path);
    results[0] = MakeI32(handle.ok() ? handle.value() : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("dlsym", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(std::string name, GuestString(*f, args[1].i32, args[2].i32));
    auto symbol = f->DlSym(args[0].i32, name);
    results[0] = MakeI32(symbol.ok() ? symbol.value() : static_cast<uint32_t>(-1));
    return OkStatus();
  });
  reg("dyn_call", [f](Instance&, const Value* args, size_t, Value* results) {
    FAASM_ASSIGN_OR_RETURN(int32_t out, f->DynCall(args[0].i32, static_cast<int32_t>(args[1].i32)));
    results[0] = MakeI32(static_cast<uint32_t>(out));
    return OkStatus();
  });
  reg("dlclose", [f](Instance&, const Value* args, size_t, Value* results) {
    results[0] = MakeI32(f->DlClose(args[0].i32).ok() ? 0 : static_cast<uint32_t>(-1));
    return OkStatus();
  });

  // --- Misc ---------------------------------------------------------------------------------
  reg("gettime", [f](Instance&, const Value*, size_t, Value* results) {
    results[0] = MakeI64(static_cast<uint64_t>(f->MonotonicTimeNs()));
    return OkStatus();
  });
  reg("getrandom", [f](Instance&, const Value* args, size_t, Value* results) {
    Bytes buffer(args[1].i32);
    for (auto& byte : buffer) {
      byte = static_cast<uint8_t>(f->rng().NextU64());
    }
    FAASM_RETURN_IF_ERROR(f->memory().Write(args[0].i32, buffer.data(), buffer.size()));
    results[0] = MakeI32(static_cast<uint32_t>(buffer.size()));
    return OkStatus();
  });
}

}  // namespace faasm
