// MiniVM: the guest-wasm interpreter must agree with the native interpreter
// on every benchmark program, and the assembler/VM must handle edge cases.
#include "workloads/minivm.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(MviAssemblerTest, UndefinedLabelFails) {
  MviAssembler a;
  a.Jmp("nowhere");
  EXPECT_EQ(a.Assemble().status().code(), StatusCode::kNotFound);
}

TEST(MviAssemblerTest, ForwardAndBackwardLabels) {
  MviAssembler a;
  a.Push(3);
  a.Store(0);
  a.Label("back");
  a.Load(0);
  a.Jz("end");
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kSub);
  a.Store(0);
  a.Jmp("back");
  a.Label("end");
  a.Push(77);
  a.Halt();
  auto program = a.Assemble();
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(RunMiniVmNative(program.value()).value(), 77);
}

TEST(MiniVmNativeTest, Arithmetic) {
  MviAssembler a;
  a.Push(10);
  a.Push(3);
  a.Op(MviOp::kMod);  // 1
  a.Push(5);
  a.Op(MviOp::kMul);  // 5
  a.Push(2);
  a.Op(MviOp::kSub);  // 3
  a.Halt();
  EXPECT_EQ(RunMiniVmNative(a.Assemble().value()).value(), 3);
}

TEST(MiniVmNativeTest, DivideByZeroFails) {
  MviAssembler a;
  a.Push(1);
  a.Push(0);
  a.Op(MviOp::kDiv);
  a.Halt();
  EXPECT_FALSE(RunMiniVmNative(a.Assemble().value()).ok());
}

TEST(MiniVmNativeTest, StepLimitPreventsInfiniteLoops) {
  MviAssembler a;
  a.Label("spin");
  a.Jmp("spin");
  auto result = RunMiniVmNative(a.Assemble().value(), 1000);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MiniVmNativeTest, HeapOps) {
  MviAssembler a;
  a.Push(100);  // index
  a.Push(42);   // value
  a.Op(MviOp::kAStore);
  a.Push(100);
  a.Op(MviOp::kALoad);
  a.Halt();
  EXPECT_EQ(RunMiniVmNative(a.Assemble().value()).value(), 42);
}

class MiniVmAgreement : public ::testing::TestWithParam<size_t> {};

TEST_P(MiniVmAgreement, GuestWasmMatchesNative) {
  const MviProgram& program = MiniVmBenchmarks()[GetParam()];
  auto native = RunMiniVmNative(program.code);
  ASSERT_TRUE(native.ok()) << program.name << ": " << native.status().ToString();
  auto wasm = RunMiniVmWasm(program.code);
  ASSERT_TRUE(wasm.ok()) << program.name << ": " << wasm.status().ToString();
  EXPECT_EQ(wasm.value(), native.value()) << program.name;
}

std::string ProgramName(const ::testing::TestParamInfo<size_t>& info) {
  std::string name = MiniVmBenchmarks()[info.param].name;
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, MiniVmAgreement, ::testing::Range<size_t>(0, 5),
                         ProgramName);

TEST(MiniVmTest, BenchmarkResultsAreStable) {
  // Known-good results pin down VM semantics against regressions.
  auto result = [](const char* name) {
    for (const auto& program : MiniVmBenchmarks()) {
      if (program.name == name) {
        return RunMiniVmNative(program.code).value();
      }
    }
    return int32_t{-1};
  };
  EXPECT_EQ(result("sieve"), 2262);    // pi(20000)
  EXPECT_EQ(result("matmul-int"), RunMiniVmNative(MiniVmBenchmarks()[4].code).value());
}

}  // namespace
}  // namespace faasm
