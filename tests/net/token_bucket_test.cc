#include "net/token_bucket.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(TokenBucketTest, BurstAllowsImmediateConsumption) {
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/500.0);
  EXPECT_TRUE(bucket.TryConsume(500.0, 0));
  EXPECT_FALSE(bucket.TryConsume(1.0, 0));
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/1000.0);
  EXPECT_TRUE(bucket.TryConsume(1000.0, 0));
  EXPECT_FALSE(bucket.TryConsume(100.0, 0));
  // 100 ms at 1000 B/s refills 100 bytes.
  EXPECT_TRUE(bucket.TryConsume(100.0, 100 * kMillisecond));
  EXPECT_FALSE(bucket.TryConsume(1.0, 100 * kMillisecond));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/100.0);
  EXPECT_TRUE(bucket.TryConsume(100.0, 0));
  // After 10 seconds the bucket holds only `burst` tokens.
  EXPECT_TRUE(bucket.TryConsume(100.0, 10 * kSecond));
  EXPECT_FALSE(bucket.TryConsume(1.0, 10 * kSecond));
}

TEST(TokenBucketTest, NextAvailableComputesWait) {
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/1000.0);
  EXPECT_EQ(bucket.NextAvailable(500.0, 0), 0);
  EXPECT_TRUE(bucket.TryConsume(1000.0, 0));
  // Needs 250 more tokens at 1000/s -> 250 ms.
  const TimeNs t = bucket.NextAvailable(250.0, 0);
  EXPECT_EQ(t, 250 * kMillisecond);
  // At that time, consumption succeeds.
  EXPECT_TRUE(bucket.TryConsume(250.0, t));
}

TEST(TokenBucketTest, OversizedRequestGetsReachableWakeUpTime) {
  // Regression: for bytes > burst the bucket can never hold enough tokens,
  // and NextAvailable used to return a time at which consumption still
  // failed, so callers waiting for it spun forever. Oversized requests are
  // clamped: the burst drains and the overflow is charged as wait time.
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/100.0);
  // Bucket starts full: the 900-byte overflow paces out at the line rate.
  const TimeNs t = bucket.NextAvailable(1000.0, 0);
  EXPECT_EQ(t, 900 * kMillisecond);
  // At the promised time the (clamped) consumption succeeds and drains the
  // burst — the wait is reachable, not infinite.
  EXPECT_TRUE(bucket.TryConsume(bucket.burst(), t));
  EXPECT_FALSE(bucket.TryConsume(1.0, t));
  // From an empty bucket the wait covers refilling the burst plus overflow.
  EXPECT_EQ(bucket.NextAvailable(1000.0, t), t + 1000 * kMillisecond);
}

TEST(TokenBucketTest, ShapingEnforcesLongTermRate) {
  // Consume in a loop; total consumed over 10 s must not exceed rate * 10 + burst.
  TokenBucket bucket(/*rate=*/1e6, /*burst=*/1e5);
  double consumed = 0;
  for (TimeNs now = 0; now <= 10 * kSecond; now += kMillisecond) {
    if (bucket.TryConsume(2000.0, now)) {
      consumed += 2000.0;
    }
  }
  EXPECT_LE(consumed, 1e6 * 10 + 1e5 + 2000.0);
  EXPECT_GT(consumed, 1e6 * 10 * 0.95);
}

}  // namespace
}  // namespace faasm
