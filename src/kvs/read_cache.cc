#include "kvs/read_cache.h"

#include <algorithm>

namespace faasm {

ReadCache::Entry* ReadCache::LiveEntryLocked(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return nullptr;
  }
  if (it->second.epoch != CurrentEpoch()) {
    // Installed under an older membership epoch: mastership (and possibly
    // the value, through its new master) may have changed since.
    cached_bytes_ -= it->second.value.size();
    entries_.erase(it);
    invalidations_.Increment();
    return nullptr;
  }
  return &it->second;
}

bool ReadCache::FreshLocked(TimeNs stamp, TimeNs max_staleness) const {
  TimeNs bound = lease_;
  if (max_staleness != kLeaseStaleness) {
    bound = std::min(bound, max_staleness);
  }
  if (bound <= 0) {
    return false;  // max_staleness == 0 forces a fetch even with a lease
  }
  return clock_->Now() - stamp <= bound;
}

std::optional<Bytes> ReadCache::Lookup(const std::string& key, uint64_t offset, uint64_t len,
                                       TimeNs max_staleness) {
  if (!enabled()) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  Entry* entry = LiveEntryLocked(key);
  if (entry == nullptr || !entry->has_value || !FreshLocked(entry->value_at, max_staleness) ||
      offset > entry->value.size()) {
    // An out-of-range offset also misses: the master, not the cache, owns
    // the OutOfRange/NotFound error surface.
    misses_.Increment();
    return std::nullopt;
  }
  hits_.Increment();
  const Bytes& value = entry->value;
  const size_t end = len >= value.size() - offset ? value.size() : offset + len;
  return Bytes(value.begin() + offset, value.begin() + end);
}

std::optional<uint64_t> ReadCache::LookupSize(const std::string& key, TimeNs max_staleness) {
  if (!enabled()) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  Entry* entry = LiveEntryLocked(key);
  if (entry != nullptr && entry->has_size && FreshLocked(entry->size_at, max_staleness)) {
    hits_.Increment();
    return entry->size;
  }
  if (entry != nullptr && entry->has_value && FreshLocked(entry->value_at, max_staleness)) {
    hits_.Increment();
    return entry->value.size();
  }
  misses_.Increment();
  return std::nullopt;
}

void ReadCache::InsertFull(const std::string& key, Bytes value) {
  if (!enabled() || value.size() > kMaxCachedBytes) {
    return;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  EvictForLocked(value.size());
  Entry& entry = entries_[key];
  cached_bytes_ -= entry.value.size();
  entry.epoch = CurrentEpoch();
  entry.has_value = true;
  cached_bytes_ += value.size();
  entry.value = std::move(value);
  entry.value_at = clock_->Now();
  entry.has_size = true;
  entry.size = entry.value.size();
  entry.size_at = entry.value_at;
}

void ReadCache::InsertSize(const std::string& key, uint64_t size) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  Entry& entry = entries_[key];
  const uint64_t epoch = CurrentEpoch();
  if (entry.epoch != epoch) {
    // Refreshing a stale-epoch entry's size does not revalidate its value.
    cached_bytes_ -= entry.value.size();
    entry = Entry{};
    entry.epoch = epoch;
  }
  entry.has_size = true;
  entry.size = size;
  entry.size_at = clock_->Now();
}

void ReadCache::EvictForLocked(size_t incoming_bytes) {
  while (!entries_.empty() && cached_bytes_ + incoming_bytes > kMaxCachedBytes) {
    auto stalest = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.value_at < stalest->second.value_at) {
        stalest = it;
      }
    }
    cached_bytes_ -= stalest->second.value.size();
    entries_.erase(stalest);
  }
}

void ReadCache::Invalidate(const std::string& key) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    cached_bytes_ -= it->second.value.size();
    entries_.erase(it);
    invalidations_.Increment();
  }
}

void ReadCache::Clear() {
  std::lock_guard<std::mutex> guard(mutex_);
  entries_.clear();
  cached_bytes_ = 0;
}

}  // namespace faasm
