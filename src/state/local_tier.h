// LocalTier: the per-host registry of state replicas (Fig. 4). All Faaslets
// on a host share one LocalTier, which is exactly what lets them share
// replicas in memory instead of holding private copies.
#ifndef FAASM_STATE_LOCAL_TIER_H_
#define FAASM_STATE_LOCAL_TIER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "state/state_key_value.h"

namespace faasm {

class LocalTier {
 public:
  LocalTier(KvsClient* kvs, Clock* clock) : kvs_(kvs), clock_(clock) {}

  // Returns (creating on demand) the replica handle for `key`.
  std::shared_ptr<StateKeyValue> Lookup(const std::string& key);

  // True if a replica for `key` exists on this host.
  bool Contains(const std::string& key) const;

  // True when `key`'s global-tier master shard is this host's own (push/pull
  // for it are in-process and move zero network bytes). Pure hash lookup —
  // safe to call on scheduling hot paths.
  bool MasterLocal(const std::string& key) const { return kvs_->MasterLocal(key); }

  // Total bytes held in this host's local tier (for footprint accounting).
  size_t resident_bytes() const;

  size_t key_count() const;

  // Drops every replica (host teardown in tests).
  void Clear();

  KvsClient* kvs() { return kvs_; }
  Clock* clock() { return clock_; }

 private:
  KvsClient* kvs_;
  Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<StateKeyValue>> values_;
};

}  // namespace faasm

#endif  // FAASM_STATE_LOCAL_TIER_H_
