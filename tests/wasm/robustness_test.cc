// Robustness of the untrusted-input pipeline: random mutations of valid
// binaries and random byte blobs must never crash the decoder/validator —
// they either decode+validate cleanly or return an error Status.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "wasm/builder.h"
#include "wasm/compiled.h"
#include "wasm/decoder.h"

namespace faasm::wasm {
namespace {

Bytes ReferenceBinary() {
  ModuleBuilder b;
  b.AddMemory(1, 4);
  uint32_t g = b.AddGlobal(ValType::kI32, true, MakeI32(3));
  auto& helper = b.AddFunction("", {ValType::kI32}, {ValType::kI32});
  helper.LocalGet(0);
  helper.GlobalGet(g);
  helper.Emit(Op::kI32Mul);
  helper.End();
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  uint32_t i = f.AddLocal(ValType::kI32);
  uint32_t acc = f.AddLocal(ValType::kI32);
  f.ForConstLimit(i, 0, 10, [&] {
    f.LocalGet(acc);
    f.LocalGet(i);
    f.Call(helper.index());
    f.Emit(Op::kI32Add);
    f.LocalSet(acc);
  });
  f.LocalGet(acc);
  f.End();
  b.AddTable(2);
  b.AddElementSegment(0, {helper.index()});
  b.AddData(8, Bytes{1, 2, 3});
  return b.Build();
}

// Runs bytes through the full pipeline; must not crash.
void PipelineMustNotCrash(const Bytes& binary) {
  auto module = DecodeModule(binary);
  if (!module.ok()) {
    return;  // rejected at decode: fine
  }
  auto compiled = CompileModule(std::move(module).value());
  (void)compiled.ok();  // rejected at validation or accepted: both fine
}

class MutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzz, SingleByteMutationsNeverCrash) {
  const Bytes reference = ReferenceBinary();
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = reference;
    const size_t position = rng.NextBelow(mutated.size());
    mutated[position] = static_cast<uint8_t>(rng.NextU64());
    PipelineMustNotCrash(mutated);
  }
}

TEST_P(MutationFuzz, TruncationsNeverCrash) {
  const Bytes reference = ReferenceBinary();
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const size_t cut = rng.NextBelow(reference.size());
    Bytes truncated(reference.begin(), reference.begin() + cut);
    PipelineMustNotCrash(truncated);
  }
}

TEST_P(MutationFuzz, RandomBlobsNeverCrash) {
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes blob(rng.NextBelow(256));
    for (auto& byte : blob) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    // Half the blobs get a valid header so section parsing is reached.
    if (trial % 2 == 0 && blob.size() >= 8) {
      const uint32_t magic = kWasmMagic;
      const uint32_t version = kWasmVersion;
      std::memcpy(blob.data(), &magic, 4);
      std::memcpy(blob.data() + 4, &version, 4);
    }
    PipelineMustNotCrash(blob);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Values(11, 22, 33, 44));

TEST(RobustnessTest, ReferenceBinaryStillWorks) {
  // Sanity: the unmutated reference passes the whole pipeline.
  auto module = DecodeModule(ReferenceBinary());
  ASSERT_TRUE(module.ok());
  auto compiled = CompileModule(std::move(module).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
}

}  // namespace
}  // namespace faasm::wasm
