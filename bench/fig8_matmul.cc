// Figure 8: distributed divide-and-conquer matrix multiplication — duration
// and network transfer vs matrix size, FAASM vs container baseline. The
// paper's headline: durations are nearly identical while FAASM ships ~13%
// less data by keeping intermediate results in the local tier.
//
// Sizes are scaled down from the paper's 100..8000 sweep so that the real
// leaf computations finish in seconds on this machine (see EXPERIMENTS.md).
//
// GUEST EXECUTION TIER ABLATION (always runs first): the gemm kernel under
// the interpreter's execution tiers, composed one at a time —
//   baseline    switch dispatch + inline bounds checks + no fusion (the seed)
//   +threaded   computed-goto dispatch
//   +guard      guard-page bounds elision (no inline bounds branches)
//   +fused      superinstruction fusion (the shipping default)
// Every tier must produce the bit-identical checksum, the native twin's
// checksum, and the identical instructions_retired count; a quick OOB probe
// checks that both bounds tiers still convert a wild access into the same
// trap. The run GATES on the full fast tier reaching >= 2x the baseline's
// interpreted instructions per second.
//
//   fig8_matmul [--tiny] [--json <path>]
//
// --tiny runs only the ablation at a smaller size (CI smoke); --json writes
// the ablation result (BENCH_guest.json in CI).
#include <cmath>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "baseline/knative.h"
#include "common/clock.h"
#include "runtime/cluster.h"
#include "wasm/instance.h"
#include "workloads/kernels.h"
#include "workloads/matmul.h"

namespace faasm {
namespace {

// --- Guest execution tier ablation --------------------------------------------

struct GuestTier {
  const char* name;
  wasm::GuestDispatch dispatch;
  wasm::GuestBounds bounds;
  bool fused;
};

constexpr GuestTier kGuestTiers[] = {
    {"baseline", wasm::GuestDispatch::kSwitch, wasm::GuestBounds::kChecked, false},
    {"+threaded", wasm::GuestDispatch::kThreaded, wasm::GuestBounds::kChecked, false},
    {"+guard", wasm::GuestDispatch::kThreaded, wasm::GuestBounds::kGuardPage, false},
    {"+fused", wasm::GuestDispatch::kThreaded, wasm::GuestBounds::kGuardPage, true},
};

struct TierResult {
  double checksum = 0;
  uint64_t retired = 0;
  double seconds = 0;
  double mips = 0;  // interpreted wire instructions per second / 1e6
  bool guard_effective = false;
  bool ok = false;
};

TierResult RunGuestTier(const GuestTier& tier, uint32_t n, int reps) {
  TierResult result;
  const Kernel& gemm = PolybenchKernels()[0];
  auto compiled_fused = gemm.build_wasm();
  if (!compiled_fused.ok()) {
    std::fprintf(stderr, "gemm build failed: %s\n",
                 compiled_fused.status().ToString().c_str());
    return result;
  }
  auto compiled = compiled_fused.value();
  if (!tier.fused) {
    // Recompile the same decoded module with the fusion peephole off.
    wasm::CompileOptions copts;
    copts.fuse_superinstructions = false;
    auto unfused = wasm::CompileModule(compiled->module, copts);
    if (!unfused.ok()) {
      std::fprintf(stderr, "gemm recompile failed: %s\n",
                   unfused.status().ToString().c_str());
      return result;
    }
    compiled = unfused.value();
  }
  wasm::InstanceOptions options;
  options.dispatch = tier.dispatch;
  options.bounds = tier.bounds;
  auto instance = wasm::Instance::Create(compiled, nullptr, nullptr, options);
  if (!instance.ok()) {
    std::fprintf(stderr, "gemm instantiation failed: %s\n",
                 instance.status().ToString().c_str());
    return result;
  }
  auto& inst = *instance.value();
  result.guard_effective = inst.effective_bounds() == wasm::GuestBounds::kGuardPage;

  // Warm-up call: checksum agreement plus page faults out of the timed loop.
  auto warm = inst.CallExport("run", {wasm::MakeI32(static_cast<int32_t>(n))});
  if (!warm.ok()) {
    std::fprintf(stderr, "gemm run failed: %s\n", warm.status().ToString().c_str());
    return result;
  }
  result.checksum = warm.value()[0].f64;

  // Timed reps: best-of to shed scheduler noise; retired is exact per call.
  double best_mips = 0;
  for (int r = 0; r < reps; ++r) {
    const uint64_t retired_before = inst.instructions_retired();
    Stopwatch watch;
    auto out = inst.CallExport("run", {wasm::MakeI32(static_cast<int32_t>(n))});
    const double seconds = static_cast<double>(watch.ElapsedNs()) / 1e9;
    if (!out.ok() || out.value()[0].f64 != result.checksum) {
      std::fprintf(stderr, "gemm rep diverged: %s\n", out.status().ToString().c_str());
      return result;
    }
    result.retired = inst.instructions_retired() - retired_before;
    const double mips = static_cast<double>(result.retired) / seconds / 1e6;
    if (mips > best_mips) {
      best_mips = mips;
      result.seconds = seconds;
    }
  }
  result.mips = best_mips;
  result.ok = true;
  return result;
}

// Both bounds tiers must turn a wild access into the same trap. Returns true
// when checked and guard (as instantiated, post any sanitizer downgrade)
// agree on kMemoryOutOfBounds.
bool ProbeOobAgreement() {
  const Kernel& gemm = PolybenchKernels()[0];
  auto compiled = gemm.build_wasm();
  if (!compiled.ok()) {
    return false;
  }
  // run(n) with a huge n indexes far past the heap: every tier must trap.
  for (auto bounds : {wasm::GuestBounds::kChecked, wasm::GuestBounds::kGuardPage}) {
    wasm::InstanceOptions options;
    options.bounds = bounds;
    auto instance = wasm::Instance::Create(compiled.value(), nullptr, nullptr, options);
    if (!instance.ok()) {
      return false;
    }
    auto out = instance.value()->CallExport("run", {wasm::MakeI32(1 << 30)});
    if (out.ok() || out.status().message().find("out of bounds memory access") ==
                        std::string::npos) {
      std::fprintf(stderr, "OOB probe: expected an out-of-bounds trap, got %s\n",
                   out.ok() ? "success" : out.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

struct AblationResult {
  TierResult tiers[4];
  double speedup = 0;  // fast tier MIPS / baseline MIPS
  bool agree = false;
  bool oob_ok = false;
  bool gated = false;   // whether the 2x gate applied
  bool gate_ok = true;  // gate verdict (true when not applicable)
  uint32_t n = 0;
};

AblationResult RunGuestAblation(uint32_t n, int reps) {
  AblationResult result;
  result.n = n;
  PrintHeader("Guest execution tiers: gemm kernel, interpreted MIPS per tier");
  std::printf("%-12s %14s %16s %12s %10s\n", "tier", "checksum", "retired", "time(s)",
              "MIPS");
  for (int t = 0; t < 4; ++t) {
    result.tiers[t] = RunGuestTier(kGuestTiers[t], n, reps);
    const TierResult& r = result.tiers[t];
    if (!r.ok) {
      return result;
    }
    std::printf("%-12s %14.6f %16llu %12.4f %10.1f\n", kGuestTiers[t].name, r.checksum,
                static_cast<unsigned long long>(r.retired), r.seconds, r.mips);
  }

  const double native = PolybenchKernels()[0].native(n);
  result.agree = true;
  for (const TierResult& r : result.tiers) {
    if (r.checksum != native || r.retired != result.tiers[0].retired) {
      result.agree = false;
    }
  }
  result.oob_ok = ProbeOobAgreement();
  result.speedup = result.tiers[0].mips > 0 ? result.tiers[3].mips / result.tiers[0].mips : 0;

  // The 2x gate compares the full fast tier against the seed configuration;
  // it only applies when the fast tiers are actually available (sanitizer
  // builds pin the checked tier, and non-GNU compilers lose computed goto).
  result.gated = result.tiers[3].guard_effective;
  result.gate_ok = !result.gated || result.speedup >= 2.0;

  std::printf("\nfast-tier speedup: %.2fx over the seed interpreter (gate: >= 2x%s)\n",
              result.speedup, result.gated ? "" : ", skipped: fast tiers unavailable");
  std::printf("agreement: checksums %s native, retired counts %s%s\n",
              result.agree ? "match" : "DIVERGE", result.agree ? "identical" : "DIVERGE",
              result.oob_ok ? ", OOB traps agree" : ", OOB PROBE FAILED");
  return result;
}

bool WriteGuestJson(const std::string& path, const AblationResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig8_matmul\",\n  \"mode\": \"guest-tiers\",\n");
  std::fprintf(f, "  \"kernel\": \"gemm\",\n  \"n\": %u,\n", r.n);
  std::fprintf(f, "  \"tiers\": {\n");
  for (int t = 0; t < 4; ++t) {
    std::fprintf(f, "    \"%s\": {\"mips\": %.2f, \"retired\": %llu, \"seconds\": %.6f}%s\n",
                 kGuestTiers[t].name, r.tiers[t].mips,
                 static_cast<unsigned long long>(r.tiers[t].retired), r.tiers[t].seconds,
                 t + 1 < 4 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup\": %.3f,\n  \"agree\": %s,\n  \"oob_agree\": %s,\n",
               r.speedup, r.agree ? "true" : "false", r.oob_ok ? "true" : "false");
  std::fprintf(f, "  \"gated\": %s,\n  \"gate_ok\": %s\n}\n", r.gated ? "true" : "false",
               r.gate_ok ? "true" : "false");
  std::fclose(f);
  std::printf("[wrote %s]\n", path.c_str());
  return true;
}

// --- Distributed matmul sweep (the paper figure) -------------------------------

struct Point {
  double seconds = 0;
  double network_mb = 0;
  bool ok = false;
};

ClusterConfig MakeClusterConfig() {
  ClusterConfig config;
  config.hosts = 8;
  config.cores_per_host = 4;
  config.host_memory_bytes = size_t{2} * 1024 * 1024 * 1024;
  config.max_concurrent_per_host = 96;
  return config;
}

Point RunFaasm(uint32_t n) {
  FaasmCluster cluster(MakeClusterConfig());
  MatmulConfig config;
  config.n = n;
  SeedMatmulInputs(cluster.kvs(), config);
  (void)RegisterMatmulFunctions(cluster.registry());
  Point point;
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    point.ok = RunMatmul(frontend, config).ok();
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
    point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  });
  return point;
}

Point RunKnative(uint32_t n) {
  KnativeCluster cluster(MakeClusterConfig(), ContainerModel{});
  MatmulConfig config;
  config.n = n;
  SeedMatmulInputs(cluster.kvs(), config);
  (void)RegisterMatmulFunctions(cluster.registry());
  Point point;
  cluster.Run([&](KnativeCluster::Client& client) {
    const TimeNs start = cluster.clock().Now();
    point.ok = RunMatmul(client, config).ok();
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
    point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  });
  return point;
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  using namespace faasm;
  bool tiny = false;
  std::string json_path;
  FlagTable flags;
  flags.AddBool("--tiny", &tiny, "ablation only, smaller kernel size (CI smoke)");
  flags.AddString("--json", &json_path, "write the guest-tier ablation result as JSON");
  if (!flags.Parse(argc, argv)) {
    return 2;
  }

  const AblationResult ablation = RunGuestAblation(tiny ? 40 : 72, tiny ? 3 : 5);
  bool ok = true;
  for (const TierResult& r : ablation.tiers) {
    ok = ok && r.ok;
  }
  ok = ok && ablation.agree && ablation.oob_ok && ablation.gate_ok;
  if (!json_path.empty() && !WriteGuestJson(json_path, ablation)) {
    ok = false;
  }
  if (!ok) {
    std::fprintf(stderr, "guest-tier ablation FAILED\n");
    return 1;
  }
  if (tiny) {
    return 0;
  }

  PrintHeader("Figure 8: distributed matmul (64 mult + 9 merge functions per multiply)");
  PrintContainerCalibration(ContainerModel{});
  std::printf("\n%8s | %12s %14s | %12s %14s | %10s\n", "size", "faasm_t(s)", "faasm_net(MB)",
              "kn_t(s)", "kn_net(MB)", "traffic");
  for (uint32_t n : {128u, 256u, 512u, 768u}) {
    Point f = RunFaasm(n);
    Point k = RunKnative(n);
    std::printf("%8u | %12.2f %14.1f | %12.2f %14.1f | %8.1f%%%s\n", n, f.seconds,
                f.network_mb, k.seconds, k.network_mb,
                k.network_mb > 0 ? 100.0 * (k.network_mb - f.network_mb) / k.network_mb : 0.0,
                (f.ok && k.ok) ? "" : " (FAILED)");
  }
  std::printf("\nExpected shape (paper): near-identical durations once warm, with FAASM\n"
              "moving ~13%% less data across all sizes.\n");
  return 0;
}
