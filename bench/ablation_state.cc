// Ablations on the two-tier state design (DESIGN.md §3):
//   1. AsyncArray push interval (the VectorAsync consistency/traffic knob of
//      Listing 1) × delta-vs-full push: network bytes vs interval for SGD,
//      with the weight sync shipping either dirty-run deltas (one batched
//      multi-range write per push) or the whole value.
//   2. Chunked vs full pulls (state chunks, Fig. 4): bytes moved when workers
//      touch column slices of a large matrix.
//
// Pass --tiny for a seconds-scale smoke configuration (CI).
#include <cstring>

#include "bench/bench_util.h"
#include "runtime/cluster.h"
#include "state/ddo.h"
#include "workloads/sgd.h"

namespace faasm {
namespace {

struct SgdPoint {
  double network_mb = 0;
  double seconds = 0;
  double loss = -1;
};

SgdPoint RunSgdOnce(bool tiny, uint32_t interval, bool delta_push) {
  ClusterConfig cluster_config;
  cluster_config.hosts = 4;
  FaasmCluster cluster(cluster_config);
  SgdConfig config;
  // Weights span many state pages (features * 8 B) while each inter-push
  // window dirties only a few, so the delta-vs-full gap is visible.
  config.n_examples = tiny ? 512 : 4096;
  config.n_features = tiny ? 8192 : 16384;
  config.nnz_per_example = 8;
  config.n_workers = tiny ? 4 : 8;
  config.n_epochs = 2;
  config.push_interval = interval;
  config.delta_push = delta_push;
  SeedSgdDataset(cluster.kvs(), config);
  (void)RegisterSgdFunctions(cluster.registry());
  SgdPoint point;
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    auto result = RunSgdTraining(frontend, config);
    point.loss = result.ok() ? result.value() : -1;
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });
  point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  return point;
}

void PushIntervalAblation(bool tiny) {
  PrintHeader("Ablation 1: push interval x delta-vs-full push (SGD weight vector)");
  std::printf("%14s | %12s %12s %12s | %12s %12s %12s | %8s\n", "push interval",
              "delta (MB)", "time (ms)", "loss", "full (MB)", "time (ms)", "loss",
              "MB saved");
  const std::vector<uint32_t> intervals =
      tiny ? std::vector<uint32_t>{1u, 16u} : std::vector<uint32_t>{1u, 4u, 16u, 64u, 256u};
  for (uint32_t interval : intervals) {
    const SgdPoint delta = RunSgdOnce(tiny, interval, /*delta_push=*/true);
    const SgdPoint full = RunSgdOnce(tiny, interval, /*delta_push=*/false);
    std::printf("%14u | %12.1f %12.0f %12.4f | %12.1f %12.0f %12.4f | %7.0f%%\n", interval,
                delta.network_mb, delta.seconds * 1e3, delta.loss, full.network_mb,
                full.seconds * 1e3, full.loss,
                full.network_mb > 0 ? 100.0 * (full.network_mb - delta.network_mb) / full.network_mb
                                    : 0.0);
  }
  std::printf("(delta pushes ship only dirtied weight pages as one batched multi-range\n"
              " write; larger intervals trade weight freshness for traffic either way)\n");
}

void ChunkAblation(bool tiny) {
  PrintHeader("Ablation 2: chunked vs full state pulls (Fig. 4 state chunks)");
  // One big matrix; 16 workers each touch a 1/16 column slice.
  const size_t rows = tiny ? 64 : 256;
  const size_t cols = tiny ? 1024 : 4096;
  const size_t matrix_bytes = rows * cols * sizeof(double);

  for (bool chunked : {true, false}) {
    ClusterConfig cluster_config;
    cluster_config.hosts = 4;
    FaasmCluster cluster(cluster_config);
    std::vector<double> matrix(rows * cols, 1.0);
    const auto* p = reinterpret_cast<const uint8_t*>(matrix.data());
    cluster.kvs().Set("big", Bytes(p, p + matrix_bytes));

    (void)cluster.registry().RegisterNative(
        "touch", [rows, cols, chunked](InvocationContext& ctx) {
          ByteReader reader(ctx.Input());
          auto slice = reader.Get<uint32_t>();
          ReadOnlyMatrix<double> m(&ctx.state(), "big", rows, cols);
          if (!m.Init().ok()) {
            return 1;
          }
          const size_t per_slice = cols / 16;
          Status pull = chunked
                            ? m.PullColumns(slice.value() * per_slice,
                                            (slice.value() + 1) * per_slice)
                            : m.PullColumns(0, cols);  // full-value pull
          if (!pull.ok()) {
            return 2;
          }
          double sum = 0;
          for (size_t c = slice.value() * per_slice; c < (slice.value() + 1) * per_slice; ++c) {
            sum += m.At(0, c);
          }
          return sum > 0 ? 0 : 3;
        });

    cluster.Run([&](Frontend& frontend) {
      std::vector<uint64_t> ids;
      for (uint32_t slice = 0; slice < 16; ++slice) {
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(slice);
        auto id = frontend.Submit("touch", std::move(input));
        if (id.ok()) {
          ids.push_back(id.value());
        }
      }
      for (uint64_t id : ids) {
        (void)frontend.Await(id);
      }
    });
    std::printf("%-18s network %8.1f MB  (matrix is %.1f MB; 4 hosts)\n",
                chunked ? "chunked pulls:" : "full pulls:",
                static_cast<double>(cluster.network_bytes()) / 1e6, matrix_bytes / 1e6);
  }
  std::printf("(chunked pulls replicate only the columns a worker touches)\n");
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  const bool tiny = argc > 1 && std::strcmp(argv[1], "--tiny") == 0;
  faasm::PushIntervalAblation(tiny);
  faasm::ChunkAblation(tiny);
  return 0;
}
