// Multi-message batch framing: the wire container batched RPCs (the KVS
// kBatch op) use to ship several sub-messages as ONE network message. A
// framed batch is a u32 sub-message count followed by that many
// length-prefixed parts; part contents are opaque to this layer.
//
// Because the whole frame travels through a single InProcNetwork::Call, the
// byte accounting and latency model charge it as one round trip: per-batch
// accounting falls out of the framing rather than needing its own counters.
#ifndef FAASM_NET_FRAMING_H_
#define FAASM_NET_FRAMING_H_

#include <vector>

#include "common/bytes.h"

namespace faasm {

// Writes the batch header; exactly `count` AppendFrame calls must follow.
void BeginFrameBatch(ByteWriter& writer, uint32_t count);

// Appends one length-prefixed sub-message.
void AppendFrame(ByteWriter& writer, const Bytes& part);

// Convenience: frames a whole vector of parts.
void WriteFrameBatch(ByteWriter& writer, const std::vector<Bytes>& parts);

// Reads a framed batch back into its parts. The declared count is wire data:
// the reservation is capped and the per-part parse rejects truncated
// payloads instead of trusting an attacker-chosen count.
Result<std::vector<Bytes>> ReadFrameBatch(ByteReader& reader);

// Wire overhead of framing `parts` sub-messages (header + per-part length
// prefixes), for byte-accounting assertions in tests and benches.
size_t FrameOverheadBytes(size_t parts);

}  // namespace faasm

#endif  // FAASM_NET_FRAMING_H_
