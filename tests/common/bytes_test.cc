#include "common/bytes.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(BytesTest, WriterReaderRoundTrip) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.Put<uint32_t>(0xdeadbeef);
  writer.Put<int64_t>(-7);
  writer.Put<double>(3.25);
  writer.PutString("faaslet");
  writer.PutBytes(Bytes{1, 2, 3});

  ByteReader reader(buffer);
  EXPECT_EQ(reader.Get<uint32_t>().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.Get<int64_t>().value(), -7);
  EXPECT_EQ(reader.Get<double>().value(), 3.25);
  EXPECT_EQ(reader.GetString().value(), "faaslet");
  EXPECT_EQ(reader.GetBytes().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(reader.exhausted());
}

TEST(BytesTest, TruncatedReadsFail) {
  Bytes buffer{1, 2};
  ByteReader reader(buffer);
  EXPECT_FALSE(reader.Get<uint64_t>().ok());
}

TEST(BytesTest, TruncatedStringFails) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.Put<uint32_t>(100);  // claims 100 bytes follow
  buffer.push_back('x');
  ByteReader reader(buffer);
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(BytesTest, StringConversions) {
  EXPECT_EQ(StringFromBytes(BytesFromString("abc")), "abc");
  EXPECT_TRUE(BytesFromString("").empty());
}

TEST(BytesTest, HashIsStableAndDiscriminates) {
  const Bytes a = BytesFromString("state-key-a");
  const Bytes b = BytesFromString("state-key-b");
  EXPECT_EQ(HashBytes(a), HashBytes(a));
  EXPECT_NE(HashBytes(a), HashBytes(b));
  EXPECT_EQ(HashBytes(Bytes{}), 0xcbf29ce484222325ull);
}

TEST(BytesTest, ReaderPositionTracking) {
  Bytes buffer;
  ByteWriter writer(buffer);
  writer.Put<uint16_t>(7);
  writer.Put<uint16_t>(9);
  ByteReader reader(buffer);
  EXPECT_EQ(reader.position(), 0u);
  ASSERT_TRUE(reader.Get<uint16_t>().ok());
  EXPECT_EQ(reader.position(), 2u);
  EXPECT_EQ(reader.remaining(), 2u);
}

}  // namespace
}  // namespace faasm
