#include "runtime/call_table.h"

namespace faasm {

uint64_t CallTable::Create(const std::string& function, Bytes input) {
  const uint64_t id = next_id_.fetch_add(1);
  CallRecord record;
  record.id = id;
  record.function = function;
  record.input = std::move(input);
  record.submitted_at = clock_->Now();
  std::lock_guard<std::mutex> guard(mutex_);
  calls_[id] = std::move(record);
  return id;
}

Result<Bytes> CallTable::TakeInput(uint64_t id) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    return NotFound("no call #" + std::to_string(id));
  }
  return std::move(it->second.input);
}

Status CallTable::MarkRunning(uint64_t id, const std::string& host, bool cold_start) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    return NotFound("no call #" + std::to_string(id));
  }
  it->second.state = CallState::kRunning;
  it->second.executed_on = host;
  it->second.cold_start = cold_start;
  it->second.started_at = clock_->Now();
  return OkStatus();
}

Status CallTable::Complete(uint64_t id, int return_code, Bytes output) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    return NotFound("no call #" + std::to_string(id));
  }
  it->second.state = CallState::kDone;
  it->second.return_code = return_code;
  it->second.output = std::move(output);
  it->second.finished_at = clock_->Now();
  return OkStatus();
}

Status CallTable::Fail(uint64_t id, const std::string& error) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    return NotFound("no call #" + std::to_string(id));
  }
  it->second.state = CallState::kFailed;
  it->second.error = error;
  it->second.return_code = -1;
  it->second.finished_at = clock_->Now();
  return OkStatus();
}

bool CallTable::IsFinished(uint64_t id) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  return it != calls_.end() &&
         (it->second.state == CallState::kDone || it->second.state == CallState::kFailed);
}

Result<CallRecord> CallTable::Get(uint64_t id) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    return NotFound("no call #" + std::to_string(id));
  }
  return it->second;
}

Result<Bytes> CallTable::Output(uint64_t id) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = calls_.find(id);
  if (it == calls_.end()) {
    return NotFound("no call #" + std::to_string(id));
  }
  if (it->second.state != CallState::kDone) {
    return FailedPrecondition("call #" + std::to_string(id) + " not complete");
  }
  return it->second.output;
}

std::vector<CallRecord> CallTable::FinishedRecords() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<CallRecord> out;
  for (const auto& [id, record] : calls_) {
    if (record.state == CallState::kDone || record.state == CallState::kFailed) {
      out.push_back(record);
    }
  }
  return out;
}

size_t CallTable::cold_start_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t count = 0;
  for (const auto& [id, record] : calls_) {
    count += record.cold_start ? 1 : 0;
  }
  return count;
}

}  // namespace faasm
