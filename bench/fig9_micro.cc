// Figure 9: execution overhead of the wasm substrate vs native —
// (a) Polybench-style kernels, (b) the MiniVM dynamic-language runtime
// (CPython analogue). google-benchmark binary; each wasm benchmark reports a
// "vs_native" counter with the slowdown factor.
//
// NOTE (EXPERIMENTS.md): this substrate is an *interpreter*, the paper used
// the WAVM JIT, so absolute factors are larger than the paper's 1-1.6x; the
// relative shape across kernels is what this figure reproduces.
//
// STATE-OP MICRO MODE (`--state-batch`, implied by `--json`): instead of the
// google-benchmark kernels, runs the batched-vs-unbatched KVS protocol
// microbenchmark (bench/state_batch_util.h) — K counters mastered across M
// shards, pushed per round through one StateBatch barrier vs one RPC per
// key — and writes the columns as the CI artifact BENCH_batch.json:
//
//   fig9_micro --state-batch [--tiny] [--json BENCH_batch.json]
//
// READ-PATH MICRO MODE (`--read-batch`, implied by `--read-json`): the
// read-side ablation (bench/read_batch_util.h) — K immutable values
// re-pulled every round through grouped kGetBatch prefetches, per-key pulls
// (batch off), and the leased per-host read cache — written as the CI
// artifact BENCH_read.json. Gates: zero bad reads everywhere, >=4x fewer
// cross-host pull RPCs grouped vs per-key, >=90% cache hit rate on the
// hot working set:
//
//   fig9_micro --read-batch [--tiny] [--read-json BENCH_read.json]
//
// REPLICA-READ MODE (`--replica-reads`, implied by `--replica-json`): the
// co-located replica serving ablation (bench/replica_read_util.h) — K
// versioned values on an R=2 ring, one acked write + one holder-host read
// per key per round, master-only vs replica-served at identical durability,
// plus an async column whose default-staleness reads must provably fall
// through — written as the CI artifact BENCH_replica_read.json. Gates:
// >=2x fewer cross-host read RPCs with serving on, zero staleness
// violations everywhere, zero replica serves in the async column:
//
//   fig9_micro --replica-reads [--tiny] [--replica-json BENCH_replica_read.json]
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/read_batch_util.h"
#include "bench/replica_read_util.h"
#include "bench/state_batch_util.h"
#include "common/clock.h"
#include "wasm/instance.h"
#include "workloads/kernels.h"
#include "workloads/minivm.h"

namespace faasm {
namespace {

constexpr uint32_t kKernelSize = 48;

double NativeKernelTimeNs(size_t index) {
  static std::map<size_t, double> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const Kernel& kernel = PolybenchKernels()[index];
  Stopwatch watch;
  int reps = 0;
  double sink = 0;
  while (watch.ElapsedNs() < 50 * kMillisecond) {
    sink += kernel.native(kKernelSize);
    ++reps;
  }
  benchmark::DoNotOptimize(sink);
  const double per_rep = static_cast<double>(watch.ElapsedNs()) / reps;
  cache[index] = per_rep;
  return per_rep;
}

void BM_KernelNative(benchmark::State& state) {
  const Kernel& kernel = PolybenchKernels()[state.range(0)];
  state.SetLabel(kernel.name + "/native");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.native(kKernelSize));
  }
}

void BM_KernelWasm(benchmark::State& state) {
  const Kernel& kernel = PolybenchKernels()[state.range(0)];
  state.SetLabel(kernel.name + "/wasm");
  auto module = kernel.build_wasm().value();
  double total_ns = 0;
  int reps = 0;
  for (auto _ : state) {
    Stopwatch watch;
    benchmark::DoNotOptimize(RunKernelWasm(module, kKernelSize).value());
    total_ns += static_cast<double>(watch.ElapsedNs());
    ++reps;
  }
  state.counters["vs_native"] = (total_ns / reps) / NativeKernelTimeNs(state.range(0));
}

double NativeMiniVmTimeNs(size_t index) {
  static std::map<size_t, double> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const MviProgram& program = MiniVmBenchmarks()[index];
  Stopwatch watch;
  int reps = 0;
  while (watch.ElapsedNs() < 50 * kMillisecond) {
    benchmark::DoNotOptimize(RunMiniVmNative(program.code).value());
    ++reps;
  }
  const double per_rep = static_cast<double>(watch.ElapsedNs()) / reps;
  cache[index] = per_rep;
  return per_rep;
}

void BM_MiniVmNative(benchmark::State& state) {
  const MviProgram& program = MiniVmBenchmarks()[state.range(0)];
  state.SetLabel(program.name + "/native-runtime");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMiniVmNative(program.code).value());
  }
}

void BM_MiniVmWasm(benchmark::State& state) {
  const MviProgram& program = MiniVmBenchmarks()[state.range(0)];
  state.SetLabel(program.name + "/runtime-in-faaslet");
  auto module = BuildMiniVmWasm(program.code).value();
  double total_ns = 0;
  int reps = 0;
  for (auto _ : state) {
    Stopwatch watch;
    auto instance = wasm::Instance::Create(module, nullptr).value();
    benchmark::DoNotOptimize(instance->CallExport("run", {}).value()[0].i32);
    total_ns += static_cast<double>(watch.ElapsedNs());
    ++reps;
  }
  state.counters["vs_native"] = (total_ns / reps) / NativeMiniVmTimeNs(state.range(0));
}

BENCHMARK(BM_KernelNative)->DenseRange(0, 7)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KernelWasm)->DenseRange(0, 7)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniVmNative)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniVmWasm)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

// Writes the perf-trajectory artifact (CI uploads it as BENCH_batch.json).
bool WriteBatchJson(const std::string& path, bool tiny, const BatchMicroConfig& config,
                    const BatchMicroPoint& batched, const BatchMicroPoint& unbatched) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig9_micro_state_batch\",\n  \"tiny\": %s,\n",
               tiny ? "true" : "false");
  std::fprintf(f, "  \"hosts\": %d,\n  \"keys\": %d,\n  \"rounds\": %d,\n", config.hosts,
               config.keys, config.rounds);
  std::fprintf(f, "  \"columns\": {\n");
  WriteBatchMicroPointJson(f, "batched", batched, ",");
  WriteBatchMicroPointJson(f, "unbatched", unbatched, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

// Returns 0 when the batched column beats unbatched on RPCs and bytes at
// zero loss — the acceptance gate the CI bench smoke enforces.
int RunStateBatchMicroMode(bool tiny, const std::string& json_path) {
  PrintHeader("State-op micro: batched vs unbatched KVS protocol (kBatch)");
  const BatchMicroConfig batched_config = BatchMicroConfig::ForScale(tiny, /*batched=*/true);
  const BatchMicroConfig unbatched_config = BatchMicroConfig::ForScale(tiny, /*batched=*/false);
  std::printf("[%d counters across %d hosts, %d rounds of increment-all]\n",
              batched_config.keys, batched_config.hosts, batched_config.rounds);
  std::printf("%10s | %10s %12s %12s %8s\n", "protocol", "tier RPCs", "net (MB)", "time (ms)",
              "lost");
  const BatchMicroPoint batched = RunStateBatchMicro(batched_config);
  PrintBatchMicroRow("batched", batched);
  const BatchMicroPoint unbatched = RunStateBatchMicro(unbatched_config);
  PrintBatchMicroRow("unbatched", unbatched);
  std::printf("(each batched barrier groups K cross-shard pushes into at most one RPC\n"
              " per master shard, pipelined; unbatched pays one round trip per key)\n");

  if (!json_path.empty() &&
      !WriteBatchJson(json_path, tiny, batched_config, batched, unbatched)) {
    return 1;
  }
  if (batched.lost_updates != 0 || unbatched.lost_updates != 0) {
    std::fprintf(stderr, "FAIL: lost updates (batched=%llu unbatched=%llu)\n",
                 static_cast<unsigned long long>(batched.lost_updates),
                 static_cast<unsigned long long>(unbatched.lost_updates));
    return 1;
  }
  if (batched.tier_rpcs >= unbatched.tier_rpcs) {
    std::fprintf(stderr, "FAIL: batched protocol did not reduce tier RPCs (%llu >= %llu)\n",
                 static_cast<unsigned long long>(batched.tier_rpcs),
                 static_cast<unsigned long long>(unbatched.tier_rpcs));
    return 1;
  }
  return 0;
}

// Writes the read-path artifact (CI uploads it as BENCH_read.json).
bool WriteReadJson(const std::string& path, bool tiny, const ReadMicroConfig& config,
                   const ReadMicroPoint& grouped, const ReadMicroPoint& per_key,
                   const ReadMicroPoint& cached) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig9_micro_read_batch\",\n  \"tiny\": %s,\n",
               tiny ? "true" : "false");
  std::fprintf(f, "  \"hosts\": %d,\n  \"keys\": %d,\n  \"rounds\": %d,\n", config.hosts,
               config.keys, config.rounds);
  std::fprintf(f, "  \"columns\": {\n");
  WriteReadMicroPointJson(f, "grouped", grouped, ",");
  WriteReadMicroPointJson(f, "per_key", per_key, ",");
  WriteReadMicroPointJson(f, "grouped_cached", cached, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

// Returns 0 when the read-path gates hold: zero bad reads in every column,
// grouped prefetches cut cross-host pull RPCs by at least 4x vs per-key
// pulls, and the leased cache serves at least 90% of hot-key lookups.
int RunStateReadMicroMode(bool tiny, const std::string& json_path) {
  PrintHeader("Read micro: grouped (kGetBatch) + cached vs per-key pulls");
  const ReadMicroConfig grouped_config = ReadMicroConfig::ForScale(tiny, true, false);
  const ReadMicroConfig per_key_config = ReadMicroConfig::ForScale(tiny, false, false);
  const ReadMicroConfig cached_config = ReadMicroConfig::ForScale(tiny, true, true);
  std::printf("[%d immutable values across %d hosts, %d rounds of pull-all]\n",
              grouped_config.keys, grouped_config.hosts, grouped_config.rounds);
  std::printf("%18s | %10s %12s %12s %8s %9s\n", "read path", "pull RPCs", "net (MB)",
              "time (ms)", "bad", "hit rate");
  const ReadMicroPoint grouped = RunStateReadMicro(grouped_config);
  PrintReadMicroRow("grouped", grouped);
  const ReadMicroPoint per_key = RunStateReadMicro(per_key_config);
  PrintReadMicroRow("per-key", per_key);
  const ReadMicroPoint cached = RunStateReadMicro(cached_config);
  PrintReadMicroRow("grouped+cache", cached);
  std::printf("(a grouped prefetch pulls the working set in at most one kGetBatch per\n"
              " master endpoint; the leased cache serves repeats with zero RPCs)\n");

  if (!json_path.empty() &&
      !WriteReadJson(json_path, tiny, grouped_config, grouped, per_key, cached)) {
    return 1;
  }
  if (grouped.bad_reads != 0 || per_key.bad_reads != 0 || cached.bad_reads != 0) {
    std::fprintf(stderr, "FAIL: bad reads (grouped=%llu per_key=%llu cached=%llu)\n",
                 static_cast<unsigned long long>(grouped.bad_reads),
                 static_cast<unsigned long long>(per_key.bad_reads),
                 static_cast<unsigned long long>(cached.bad_reads));
    return 1;
  }
  if (grouped.pull_rpcs * 4 > per_key.pull_rpcs) {
    std::fprintf(stderr, "FAIL: grouped reads did not cut pull RPCs 4x (%llu vs %llu)\n",
                 static_cast<unsigned long long>(grouped.pull_rpcs),
                 static_cast<unsigned long long>(per_key.pull_rpcs));
    return 1;
  }
  if (cached.hit_rate < 0.90) {
    std::fprintf(stderr, "FAIL: read-cache hit rate %.1f%% below 90%%\n",
                 cached.hit_rate * 100);
    return 1;
  }
  return 0;
}

// Writes the replica-read artifact (CI uploads it as BENCH_replica_read.json).
bool WriteReplicaJson(const std::string& path, bool tiny, const ReplicaMicroConfig& config,
                      const ReplicaMicroPoint& master_only, const ReplicaMicroPoint& replica,
                      const ReplicaMicroPoint& async_strict) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig9_micro_replica_read\",\n  \"tiny\": %s,\n",
               tiny ? "true" : "false");
  std::fprintf(f, "  \"hosts\": %d,\n  \"keys\": %d,\n  \"rounds\": %d,\n", config.hosts,
               config.keys, config.rounds);
  std::fprintf(f, "  \"columns\": {\n");
  WriteReplicaMicroPointJson(f, "master_only", master_only, ",");
  WriteReplicaMicroPointJson(f, "replica_served", replica, ",");
  WriteReplicaMicroPointJson(f, "async_strict", async_strict, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

// Returns 0 when the replica-read gates hold: serving from co-located
// backups cuts cross-host read RPCs at least 2x vs master-only at R=2,
// no column ever returned a version behind an acked write, and the async
// column's default-staleness reads all fell through to the master.
int RunReplicaReadMicroMode(bool tiny, const std::string& json_path) {
  PrintHeader("Replica-read micro: master-only vs co-located replica serving (R=2)");
  const ReplicaMicroConfig master_config = ReplicaMicroConfig::ForScale(tiny, false, true);
  const ReplicaMicroConfig replica_config = ReplicaMicroConfig::ForScale(tiny, true, true);
  const ReplicaMicroConfig async_config = ReplicaMicroConfig::ForScale(tiny, true, false);
  std::printf("[%d versioned values across %d hosts at R=2, %d rounds of write+read\n"
              " from alternating holder hosts]\n",
              replica_config.keys, replica_config.hosts, replica_config.rounds);
  std::printf("%14s | %10s %14s %12s %12s %7s %5s\n", "read path", "read RPCs",
              "replica serves", "net (MB)", "time (ms)", "stale", "bad");
  const ReplicaMicroPoint master_only = RunReplicaReadMicro(master_config);
  PrintReplicaMicroRow("master-only", master_only);
  const ReplicaMicroPoint replica = RunReplicaReadMicro(replica_config);
  PrintReplicaMicroRow("replica-served", replica);
  const ReplicaMicroPoint async_strict = RunReplicaReadMicro(async_config);
  PrintReplicaMicroRow("async-strict", async_strict);
  std::printf("(both sync columns replicate identically; they differ only in whether a\n"
              " backup host's client may answer from its own certified copy. the async\n"
              " column keeps serving ON but every default-staleness read must fall\n"
              " through: an acked write may not have reached the copy yet)\n");

  if (!json_path.empty() && !WriteReplicaJson(json_path, tiny, replica_config, master_only,
                                              replica, async_strict)) {
    return 1;
  }
  if (master_only.staleness_violations != 0 || replica.staleness_violations != 0 ||
      async_strict.staleness_violations != 0 || master_only.bad_reads != 0 ||
      replica.bad_reads != 0 || async_strict.bad_reads != 0) {
    std::fprintf(stderr,
                 "FAIL: stale or bad reads (master=%llu/%llu replica=%llu/%llu "
                 "async=%llu/%llu)\n",
                 static_cast<unsigned long long>(master_only.staleness_violations),
                 static_cast<unsigned long long>(master_only.bad_reads),
                 static_cast<unsigned long long>(replica.staleness_violations),
                 static_cast<unsigned long long>(replica.bad_reads),
                 static_cast<unsigned long long>(async_strict.staleness_violations),
                 static_cast<unsigned long long>(async_strict.bad_reads));
    return 1;
  }
  if (replica.replica_serves == 0) {
    std::fprintf(stderr, "FAIL: the replica tier never served a read\n");
    return 1;
  }
  // >=2x RPC cut (a zero-RPC replica column trivially passes; guard the
  // division by comparing multiplicatively).
  if (master_only.read_rpcs < 2 * replica.read_rpcs || master_only.read_rpcs == 0) {
    std::fprintf(stderr, "FAIL: replica serving did not cut read RPCs 2x (%llu vs %llu)\n",
                 static_cast<unsigned long long>(replica.read_rpcs),
                 static_cast<unsigned long long>(master_only.read_rpcs));
    return 1;
  }
  if (async_strict.replica_serves != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu async default-staleness reads were served by a replica\n",
                 static_cast<unsigned long long>(async_strict.replica_serves));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  // Our flags select the state-op micro mode; anything else goes to
  // google-benchmark unchanged.
  bool state_batch = false;
  bool read_batch = false;
  bool replica_reads = false;
  bool tiny = false;
  std::string json_path;
  std::string read_json_path;
  std::string replica_json_path;
  std::vector<char*> forwarded;
  forwarded.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--state-batch") {
      state_batch = true;
    } else if (arg == "--read-batch") {
      read_batch = true;
    } else if (arg == "--replica-reads") {
      replica_reads = true;
    } else if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--json" && i + 1 < argc) {
      state_batch = true;  // --json implies the micro mode (CI artifact)
      json_path = argv[++i];
    } else if (arg == "--read-json" && i + 1 < argc) {
      read_batch = true;  // --read-json implies the read micro mode
      read_json_path = argv[++i];
    } else if (arg == "--replica-json" && i + 1 < argc) {
      replica_reads = true;  // --replica-json implies the replica micro mode
      replica_json_path = argv[++i];
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  if (replica_reads) {
    return faasm::RunReplicaReadMicroMode(tiny, replica_json_path);
  }
  if (read_batch) {
    return faasm::RunStateReadMicroMode(tiny, read_json_path);
  }
  if (state_batch) {
    return faasm::RunStateBatchMicroMode(tiny, json_path);
  }
  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc, forwarded.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
