// In-memory representation of a decoded WebAssembly module (spec §2.5).
// Function bodies are kept as raw expression bytes; the compiler
// (compiler.h) validates them and produces preprocessed code.
#ifndef FAASM_WASM_MODULE_H_
#define FAASM_WASM_MODULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "wasm/types.h"

namespace faasm::wasm {

constexpr uint32_t kWasmMagic = 0x6d736100;  // "\0asm"
constexpr uint32_t kWasmVersion = 1;

enum class ExternalKind : uint8_t { kFunction = 0, kTable = 1, kMemory = 2, kGlobal = 3 };

struct Import {
  std::string module;
  std::string name;
  ExternalKind kind = ExternalKind::kFunction;
  uint32_t type_index = 0;  // for kFunction
};

struct Export {
  std::string name;
  ExternalKind kind = ExternalKind::kFunction;
  uint32_t index = 0;
};

struct FunctionBody {
  // Locals as (count, type) runs, exactly as encoded.
  std::vector<std::pair<uint32_t, ValType>> locals;
  // Raw expression bytes, including the terminating `end`.
  Bytes code;
};

struct GlobalDef {
  ValType type = ValType::kI32;
  bool mutable_ = false;
  Value init{};  // constant initialiser value
};

struct ElementSegment {
  uint32_t table_index = 0;
  uint32_t offset = 0;  // from i32.const initialiser
  std::vector<uint32_t> func_indices;
};

struct DataSegment {
  uint32_t memory_index = 0;
  uint32_t offset = 0;  // from i32.const initialiser
  Bytes bytes;
};

struct CustomSection {
  std::string name;
  Bytes bytes;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;           // function imports only (this embedder)
  std::vector<uint32_t> function_types;  // type index per defined function
  std::vector<FunctionBody> bodies;      // parallel to function_types
  std::optional<Limits> table;           // single funcref table (MVP)
  std::optional<Limits> memory;          // single linear memory (MVP)
  std::vector<GlobalDef> globals;
  std::vector<Export> exports;
  std::optional<uint32_t> start_function;
  std::vector<ElementSegment> elements;
  std::vector<DataSegment> data;
  std::vector<CustomSection> custom_sections;

  uint32_t num_imported_functions() const { return static_cast<uint32_t>(imports.size()); }
  uint32_t num_functions() const {
    return num_imported_functions() + static_cast<uint32_t>(function_types.size());
  }

  // Type of function `index` (imports first, then defined functions).
  const FuncType& function_type(uint32_t index) const {
    if (index < num_imported_functions()) {
      return types[imports[index].type_index];
    }
    return types[function_types[index - num_imported_functions()]];
  }

  // Finds an export by name and kind; returns its index space position.
  std::optional<uint32_t> FindExport(const std::string& name, ExternalKind kind) const {
    for (const auto& e : exports) {
      if (e.kind == kind && e.name == name) {
        return e.index;
      }
    }
    return std::nullopt;
  }
};

}  // namespace faasm::wasm

#endif  // FAASM_WASM_MODULE_H_
