// Shared runner for the batched + cached READ-path columns (fig9_micro
// --read-batch / --read-cache) — the read-side twin of state_batch_util.h.
//
// Workload: K immutable values spread across the sharded tier by consistent
// hashing; each round one function call drops its local replicas and
// re-pulls EVERY value — through LocalTier::Prefetch (grouped: at most one
// kGetBatch RPC per master endpoint, and with the read cache on, zero RPCs
// for leased repeats) or one sizing + fetch round trip per key
// (--read-batch=off). The columns must show fewer cross-host pull RPCs at
// ZERO bad reads: every pulled byte is checked against its seeded pattern,
// so a stale or torn serve counts against the column.
#ifndef FAASM_BENCH_READ_BATCH_UTIL_H_
#define FAASM_BENCH_READ_BATCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "runtime/cluster.h"

namespace faasm {

struct ReadMicroPoint {
  uint64_t pull_rpcs = 0;  // read RPCs received by the kvs shard servers
  double network_mb = 0;
  double seconds = 0;
  uint64_t bad_reads = 0;  // rounds that saw a stale, torn, or failed value
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double hit_rate = 0;
};

struct ReadMicroConfig {
  int hosts = 4;
  int keys = 16;
  int rounds = 48;
  bool read_batch = true;
  bool read_cache = false;

  static ReadMicroConfig ForScale(bool tiny, bool read_batch, bool read_cache) {
    ReadMicroConfig config;
    if (tiny) {
      config.keys = 8;
    }
    config.read_batch = read_batch;
    config.read_cache = read_cache;
    return config;
  }
};

constexpr size_t kReadMicroValueBytes = 256;

inline std::string ReadMicroKey(int i) { return "rm-value-" + std::to_string(i); }

inline void PrintReadMicroRow(const char* name, const ReadMicroPoint& point) {
  std::printf("%18s | %10llu %12.2f %12.0f %8llu %8.1f%%\n", name,
              static_cast<unsigned long long>(point.pull_rpcs), point.network_mb,
              point.seconds * 1e3, static_cast<unsigned long long>(point.bad_reads),
              point.hit_rate * 100);
}

inline void WriteReadMicroPointJson(std::FILE* f, const char* name, const ReadMicroPoint& p,
                                    const char* suffix) {
  std::fprintf(f,
               "    \"%s\": {\"pull_rpcs\": %llu, \"network_mb\": %.3f, "
               "\"seconds\": %.4f, \"bad_reads\": %llu, \"cache_hits\": %llu, "
               "\"cache_misses\": %llu, \"hit_rate\": %.4f}%s\n",
               name, static_cast<unsigned long long>(p.pull_rpcs), p.network_mb, p.seconds,
               static_cast<unsigned long long>(p.bad_reads),
               static_cast<unsigned long long>(p.cache_hits),
               static_cast<unsigned long long>(p.cache_misses), p.hit_rate, suffix);
}

inline ReadMicroPoint RunStateReadMicro(const ReadMicroConfig& micro) {
  ClusterConfig cluster_config;
  cluster_config.hosts = micro.hosts;
  cluster_config.state_tier = StateTier::kSharded;
  cluster_config.batch_state_reads = micro.read_batch;
  cluster_config.read_cache = micro.read_cache;
  // The workload's values are immutable, so a long lease is safe — exactly
  // the opt-in contract the cache documents.
  cluster_config.read_lease_ns = 10 * kSecond;
  FaasmCluster cluster(cluster_config);

  for (int i = 0; i < micro.keys; ++i) {
    cluster.kvs().Set(ReadMicroKey(i), Bytes(kReadMicroValueBytes, uint8_t(i + 1)));
  }

  const int keys = micro.keys;
  (void)cluster.registry().RegisterNative("pull_all", [keys](InvocationContext& ctx) {
    // Drop every local replica first: each round re-reads the whole working
    // set through the tier, the access pattern the read cache targets.
    std::vector<std::string> names;
    names.reserve(keys);
    for (int i = 0; i < keys; ++i) {
      names.push_back(ReadMicroKey(i));
      ctx.state().Lookup(names.back())->InvalidateReplica();
    }
    if (!ctx.state().Prefetch(names).ok()) {
      return 2;
    }
    for (int i = 0; i < keys; ++i) {
      auto kv = ctx.state().Lookup(names[i]);
      if (!kv->Pull().ok() || kv->size() != kReadMicroValueBytes) {
        return 3;
      }
      const uint8_t* bytes = kv->data();
      for (size_t b = 0; b < kReadMicroValueBytes; ++b) {
        if (bytes[b] != uint8_t(i + 1)) {
          return 4;  // stale or torn read
        }
      }
    }
    return 0;
  });

  ReadMicroPoint point;
  cluster.network().ResetStats();
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    for (int round = 0; round < micro.rounds; ++round) {
      auto code = frontend.Invoke("pull_all", Bytes{});
      if (!code.ok() || code.value() != 0) {
        point.bad_reads += 1;
      }
    }
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });

  for (size_t host = 0; host < cluster.host_count(); ++host) {
    if (const KvsServer* server = cluster.host(host).shard_server()) {
      point.pull_rpcs += server->read_rpc_count();
    }
    const ReadCache& cache = cluster.host(host).kvs().read_cache();
    point.cache_hits += cache.hits();
    point.cache_misses += cache.misses();
  }
  point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  const uint64_t lookups = point.cache_hits + point.cache_misses;
  point.hit_rate = lookups == 0 ? 0 : static_cast<double>(point.cache_hits) / lookups;
  return point;
}

}  // namespace faasm

#endif  // FAASM_BENCH_READ_BATCH_UTIL_H_
