// Crash-failover tests (ISSUE 7 acceptance): FaasmCluster::KillHost removes
// a host abruptly — no drain, mail dropped, endpoints gone — while writer
// functions hammer counters through DDOs. With replication_factor > 1 every
// acknowledged increment must survive the crash (promoted from a live
// backup before the epoch flips), held distributed locks must keep
// excluding, and clients must recover through the ordinary
// kUnavailable/kWrongMaster bounce. At factor 1 the dead shard's keys are
// lost — counted, never silent.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>

#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {
namespace {

constexpr int kCounters = 8;

std::string CounterKey(int i) { return "counter-" + std::to_string(i); }

// The exact cross-host increment from rebalance_test.cc: global write lock,
// invalidate + pull, bump, delta push, unlock.
void RegisterIncrement(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("inc",
                                  [](InvocationContext& ctx) {
                                    ByteReader reader(ctx.Input());
                                    auto index = reader.Get<uint32_t>();
                                    if (!index.ok()) {
                                      return 1;
                                    }
                                    SharedArray<uint64_t> counter(&ctx.state(),
                                                                  CounterKey(index.value()));
                                    if (!counter.kv().LockGlobalWrite().ok()) {
                                      return 2;
                                    }
                                    counter.kv().InvalidateReplica();
                                    if (!counter.Attach().ok()) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 3;
                                    }
                                    uint64_t* value = counter.WritableElements(0, 1);
                                    if (value == nullptr) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 4;
                                    }
                                    *value += 1;
                                    counter.MarkDirtyElements(0, 1);
                                    const bool pushed = counter.Push().ok();
                                    const bool unlocked =
                                        counter.kv().UnlockGlobalWrite().ok();
                                    return pushed && unlocked ? 0 : 5;
                                  })
                  .ok());
}

uint64_t ReadCounter(FaasmCluster& cluster, int i) {
  auto value = cluster.kvs().Get(CounterKey(i));
  if (!value.ok() || value.value().size() != sizeof(uint64_t)) {
    ADD_FAILURE() << "counter " << i << " unreadable: " << value.status().ToString();
    return 0;
  }
  uint64_t count = 0;
  std::memcpy(&count, value.value().data(), sizeof(count));
  return count;
}

TEST(FailoverTest, NoAcknowledgedIncrementLostAcrossHostKills) {
  // THE acceptance property of the replication substrate: two hosts crash
  // mid-load (no drain — their mailboxes are dropped, their shards never
  // hand anything over) and still every acked increment — and nothing else
  // — is in the final counters.
  ClusterConfig config;
  config.hosts = 5;
  config.replication_factor = 2;  // sync forwarding is the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  // Ballast spreads state over every shard so each crash has something to
  // promote (eight counters alone can all hash away from a victim).
  constexpr int kBallast = 40;
  for (int i = 0; i < kBallast; ++i) {
    ASSERT_TRUE(
        cluster.kvs().Set("ballast-" + std::to_string(i), Bytes(32, uint8_t(i))).ok());
  }
  RegisterIncrement(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  std::array<uint64_t, kCounters> acked{};
  uint64_t mail_failures = 0;

  cluster.Run([&](Frontend& frontend) {
    for (const std::string victim : {"host-1", "host-3"}) {
      std::vector<std::pair<uint64_t, uint32_t>> batch;
      for (int i = 0; i < 3 * kCounters; ++i) {
        const uint32_t counter = i % kCounters;
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(counter);
        auto id = frontend.Submit("inc", std::move(input));
        ASSERT_TRUE(id.ok());
        batch.emplace_back(id.value(), counter);
      }

      auto stats = cluster.KillHost(victim);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats.value().lost_keys, 0u) << "acked state lost in the crash";

      for (const auto& [id, counter] : batch) {
        auto code = frontend.Await(id);
        if (code.ok() && code.value() == 0) {
          acked[counter] += 1;
        } else {
          // A call the victim had accepted but never executed: failed by
          // FailAbandonedMail, surfaced here instead of hanging. It must
          // NOT have incremented.
          mail_failures += 1;
        }
      }
    }
  });

  // Two crashes, two epoch flips, and the cluster kept a live master for
  // every key.
  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 2);
  EXPECT_EQ(cluster.shard_map().shard_count(), 3u);
  EXPECT_EQ(cluster.host_count(), 3u);
  EXPECT_EQ(cluster.failover_stats().lost_keys, 0u);
  EXPECT_GT(cluster.failover_stats().promoted_keys, 0u);

  // Every acked increment — and nothing else — survived both crashes, and
  // the ballast came through byte-for-byte.
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
  for (int i = 0; i < kBallast; ++i) {
    auto value = cluster.kvs().Get("ballast-" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(value.value(), Bytes(32, uint8_t(i)));
  }
  // The harness is honest: dropped-mail calls error out rather than ack.
  // (Whether any land in the window is timing-dependent; losing THOSE is
  // allowed — they were never acked.)
  (void)mail_failures;
}

TEST(FailoverTest, WithoutReplicationLostKeysAreCountedNotSilent) {
  ClusterConfig config;
  config.hosts = 3;  // replication_factor stays 1
  FaasmCluster cluster(config);
  ASSERT_EQ(cluster.replication(), nullptr);

  // Seed enough keys that every shard masters a few.
  constexpr int kSeeded = 48;
  for (int i = 0; i < kSeeded; ++i) {
    ASSERT_TRUE(cluster.kvs().Set("seed-" + std::to_string(i), Bytes(64, 9)).ok());
  }

  cluster.Run([&](Frontend&) {
    auto stats = cluster.KillHost("host-1");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_GT(stats.value().lost_keys, 0u);
    EXPECT_EQ(stats.value().promoted_keys, 0u);

    // Survivor-mastered keys still read; keys the corpse mastered are GONE
    // (NotFound through the survivors), never silently resurrected stale.
    uint64_t live = 0;
    uint64_t lost = 0;
    for (int i = 0; i < kSeeded; ++i) {
      auto value = cluster.kvs().Get("seed-" + std::to_string(i));
      if (value.ok()) {
        EXPECT_EQ(value.value().size(), 64u);
        live += 1;
      } else {
        lost += 1;
      }
    }
    EXPECT_EQ(lost, stats.value().lost_keys);
    EXPECT_EQ(live + lost, kSeeded);
  });
}

TEST(FailoverTest, LockHeldAcrossFailoverStillExcludes) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  FaasmCluster cluster(config);

  // A key mastered by host-2's shard, locked from host-0. The lock state is
  // forwarded to the backup like any other mutation.
  std::string key;
  for (int i = 0; i < 100000 && key.empty(); ++i) {
    std::string probe = "lock-probe-" + std::to_string(i);
    if (cluster.shard_map().MasterFor(probe) == ShardMap::EndpointForHost("host-2")) {
      key = std::move(probe);
    }
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(cluster.kvs().Set(key, Bytes{1, 2, 3}).ok());

  cluster.Run([&](Frontend&) {
    ASSERT_TRUE(cluster.host(0).kvs().TryLockWrite(key).value());

    // The master CRASHES with the lock held by someone else.
    auto stats = cluster.KillHost("host-2");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_NE(cluster.shard_map().MasterFor(key), ShardMap::EndpointForHost("host-2"));

    // The promoted copy still excludes a second acquirer; the original
    // holder unlocks against the NEW master, then the second gets in. The
    // value survived too.
    EXPECT_FALSE(cluster.host(1).kvs().TryLockWrite(key).value());
    EXPECT_FALSE(cluster.host(1).kvs().TryLockRead(key).value());
    ASSERT_TRUE(cluster.host(0).kvs().UnlockWrite(key).ok());
    EXPECT_TRUE(cluster.host(1).kvs().TryLockWrite(key).value());
    ASSERT_TRUE(cluster.host(1).kvs().UnlockWrite(key).ok());
    EXPECT_EQ(cluster.host(1).kvs().Read(key).value(), (Bytes{1, 2, 3}));
  });
}

TEST(FailoverTest, CachedReadsDoNotGoStaleAcrossPromotion) {
  // Read-cache coherence across a crash: cache entries are keyed
  // (key, epoch), and the failover's epoch flip invalidates them all — a
  // value cached against the dead master's epoch cannot be served after a
  // backup promotes with newer bytes.
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  config.read_cache = true;
  FaasmCluster cluster(config);

  std::string key;
  for (int i = 0; i < 100000 && key.empty(); ++i) {
    std::string probe = "cache-probe-" + std::to_string(i);
    if (cluster.shard_map().MasterFor(probe) == ShardMap::EndpointForHost("host-1")) {
      key = std::move(probe);
    }
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(cluster.kvs().Set(key, Bytes{1}).ok());

  cluster.Run([&](Frontend&) {
    // host-0 reads and caches the pre-crash value.
    EXPECT_EQ(cluster.host(0).kvs().Read(key).value(), (Bytes{1}));

    ASSERT_TRUE(cluster.KillHost("host-1").ok());
    // The promoted master takes a fresh write the cached entry predates.
    ASSERT_TRUE(cluster.kvs().Set(key, Bytes{2}).ok());

    // Same client, same lease window: the epoch moved, so the cached {1}
    // must NOT be served.
    EXPECT_EQ(cluster.host(0).kvs().Read(key).value(), (Bytes{2}));
  });
}

TEST(FailoverTest, RefusesToKillTheLastHost) {
  ClusterConfig config;
  config.hosts = 1;
  FaasmCluster cluster(config);
  cluster.Run([&](Frontend&) {
    auto stats = cluster.KillHost("host-0");
    EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
    auto missing = cluster.KillHost("host-9");
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  });
  EXPECT_EQ(cluster.host_count(), 1u);
}

TEST(FailoverTest, GracefulChurnKeepsBackupsConverged) {
  // Replication and elastic membership compose: with R=2 on, graceful
  // add/remove churn (migrations + Reconcile) must neither lose acked
  // updates nor leave backups behind — a kill AFTER the churn still
  // recovers everything.
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  RegisterIncrement(cluster);

  std::array<uint64_t, kCounters> acked{};
  cluster.Run([&](Frontend& frontend) {
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},         // + host-4 (graceful)
        {false, "host-1"},  // - graceful removal
    };
    for (const auto& [add, name] : churn) {
      std::vector<std::pair<uint64_t, uint32_t>> batch;
      for (int i = 0; i < 2 * kCounters; ++i) {
        const uint32_t counter = i % kCounters;
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(counter);
        auto id = frontend.Submit("inc", std::move(input));
        ASSERT_TRUE(id.ok());
        batch.emplace_back(id.value(), counter);
      }
      if (add) {
        ASSERT_TRUE(cluster.AddHost().ok());
      } else {
        ASSERT_TRUE(cluster.RemoveHost(name).ok());
      }
      for (const auto& [id, counter] : batch) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0);
        acked[counter] += 1;
      }
    }

    // The crash after the churn: if Reconcile kept the rotated backup
    // assignments converged, nothing is lost now either.
    auto stats = cluster.KillHost("host-2");
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().lost_keys, 0u);
  });

  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
  EXPECT_GT(cluster.replication()->stats().catchup_keys.value(), 0u);
}

}  // namespace
}  // namespace faasm
