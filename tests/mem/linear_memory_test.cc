#include "mem/linear_memory.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.h"
#include "mem/page.h"

namespace faasm {
namespace {

TEST(LinearMemoryTest, CreateWithInitialPages) {
  auto memory = LinearMemory::Create(2, 10);
  ASSERT_TRUE(memory.ok()) << memory.status().ToString();
  auto& m = *memory.value();
  EXPECT_EQ(m.size_pages(), 2u);
  EXPECT_EQ(m.size_bytes(), 2 * kWasmPageBytes);
  // Freshly committed pages read as zero.
  for (size_t i = 0; i < m.size_bytes(); i += 4096) {
    EXPECT_EQ(m.base()[i], 0);
  }
}

TEST(LinearMemoryTest, GrowReturnsOldSizeAndEnforcesMax) {
  auto memory = LinearMemory::Create(1, 3);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  EXPECT_EQ(m.Grow(1), 1u);
  EXPECT_EQ(m.size_pages(), 2u);
  EXPECT_EQ(m.Grow(1), 2u);
  EXPECT_EQ(m.Grow(1), UINT32_MAX);  // would exceed max
  EXPECT_EQ(m.size_pages(), 3u);
  EXPECT_EQ(m.Grow(0), 3u);
}

TEST(LinearMemoryTest, BoundsChecking) {
  auto memory = LinearMemory::Create(1, 1);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  EXPECT_TRUE(m.InBounds(0, kWasmPageBytes));
  EXPECT_FALSE(m.InBounds(0, kWasmPageBytes + 1));
  EXPECT_FALSE(m.InBounds(kWasmPageBytes, 1));
  EXPECT_TRUE(m.InBounds(kWasmPageBytes, 0));
  // Overflow attempt.
  EXPECT_FALSE(m.InBounds(UINT64_MAX - 1, 4));
}

TEST(LinearMemoryTest, ReadWriteChecked) {
  auto memory = LinearMemory::Create(1, 1);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  const uint32_t v = 0xcafef00d;
  ASSERT_TRUE(m.Write(100, &v, 4).ok());
  uint32_t readback = 0;
  ASSERT_TRUE(m.Read(100, &readback, 4).ok());
  EXPECT_EQ(readback, v);
  EXPECT_FALSE(m.Write(kWasmPageBytes - 2, &v, 4).ok());
  EXPECT_FALSE(m.Read(kWasmPageBytes - 2, &readback, 4).ok());
}

TEST(LinearMemoryTest, ReadCString) {
  auto memory = LinearMemory::Create(1, 1);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  const char* s = "hello";
  ASSERT_TRUE(m.Write(10, s, 6).ok());
  auto out = m.ReadCString(10);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), "hello");
  // Unterminated string within max_len fails.
  Bytes junk(32, 'x');
  ASSERT_TRUE(m.Write(200, junk.data(), junk.size()).ok());
  EXPECT_FALSE(m.ReadCString(200, 16).ok());
}

TEST(LinearMemoryTest, MapSharedRegionAliasesMemory) {
  auto memory = LinearMemory::Create(1, 100);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  auto region_result = SharedRegion::Create("shared", 3 * kHostPageBytes);
  ASSERT_TRUE(region_result.ok());
  std::shared_ptr<SharedRegion> region = std::move(region_result.value());

  auto offset = m.MapSharedRegion(region);
  ASSERT_TRUE(offset.ok()) << offset.status().ToString();
  EXPECT_EQ(offset.value(), kWasmPageBytes);  // appended after private page
  EXPECT_EQ(m.size_pages(), 2u);              // region rounded to one wasm page

  // Guest write visible through the region's host view and vice versa.
  m.base()[offset.value() + 5] = 0x5A;
  EXPECT_EQ(region->host_view()[5], 0x5A);
  region->host_view()[6] = 0x6B;
  EXPECT_EQ(m.base()[offset.value() + 6], 0x6B);
}

TEST(LinearMemoryTest, SharedRegionVisibleFromTwoMemories) {
  // The core Fig. 2 property: one region mapped into two Faaslet memories at
  // different offsets, bytes stored exactly once.
  auto mem_a = LinearMemory::Create(1, 100);
  auto mem_b = LinearMemory::Create(4, 100);
  ASSERT_TRUE(mem_a.ok());
  ASSERT_TRUE(mem_b.ok());
  auto region_result = SharedRegion::Create("s", kHostPageBytes);
  ASSERT_TRUE(region_result.ok());
  std::shared_ptr<SharedRegion> region = std::move(region_result.value());

  auto offset_a = mem_a.value()->MapSharedRegion(region);
  auto offset_b = mem_b.value()->MapSharedRegion(region);
  ASSERT_TRUE(offset_a.ok());
  ASSERT_TRUE(offset_b.ok());
  EXPECT_NE(offset_a.value(), offset_b.value());  // different guest offsets

  mem_a.value()->base()[offset_a.value() + 100] = 0x42;
  EXPECT_EQ(mem_b.value()->base()[offset_b.value() + 100], 0x42);
}

TEST(LinearMemoryTest, UnmapSharedRegionsRestoresPrivateMemory) {
  auto memory = LinearMemory::Create(1, 100);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  auto region_result = SharedRegion::Create("s", kHostPageBytes);
  ASSERT_TRUE(region_result.ok());
  std::shared_ptr<SharedRegion> region = std::move(region_result.value());
  region->host_view()[0] = 0x77;

  auto offset = m.MapSharedRegion(region);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(m.base()[offset.value()], 0x77);

  ASSERT_TRUE(m.UnmapSharedRegions().ok());
  EXPECT_EQ(m.size_pages(), 1u);
  EXPECT_TRUE(m.shared_mappings().empty());
  // Region data untouched by the unmap.
  EXPECT_EQ(region->host_view()[0], 0x77);
}

TEST(LinearMemoryTest, MemoryLimitAppliesToSharedMappings) {
  auto memory = LinearMemory::Create(1, 1);  // no headroom
  ASSERT_TRUE(memory.ok());
  auto region_result = SharedRegion::Create("s", kHostPageBytes);
  ASSERT_TRUE(region_result.ok());
  std::shared_ptr<SharedRegion> region = std::move(region_result.value());
  auto offset = memory.value()->MapSharedRegion(region);
  EXPECT_FALSE(offset.ok());
  EXPECT_EQ(offset.status().code(), StatusCode::kResourceExhausted);
}

TEST(LinearMemoryTest, RestoreFromBytes) {
  auto memory = LinearMemory::Create(1, 10);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  m.base()[0] = 1;
  m.base()[100] = 2;
  Bytes image(kWasmPageBytes, 0x11);
  ASSERT_TRUE(m.RestoreFromBytes(image.data(), image.size()).ok());
  EXPECT_EQ(m.base()[0], 0x11);
  EXPECT_EQ(m.base()[100], 0x11);
}

}  // namespace
}  // namespace faasm
