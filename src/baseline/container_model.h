// Calibrated constants for the container baseline. Running Docker/Knative is
// impossible offline, so raw container costs are taken from the paper's own
// measurements (Table 3, §6.5, §2.1) and applied by the baseline's
// *implemented* mechanisms (cold-start queuing, per-container state copies,
// HTTP chaining). Every benchmark prints this table so the calibration is
// explicit in the output.
#ifndef FAASM_BASELINE_CONTAINER_MODEL_H_
#define FAASM_BASELINE_CONTAINER_MODEL_H_

#include <cstdint>

#include "common/clock.h"

namespace faasm {

struct ContainerModel {
  // Docker cold start for a no-op container (paper Table 3: 2.8 s).
  TimeNs cold_start_ns = 2800 * kMillisecond;
  // python:3.7-alpine cold start (paper §6.5: 3.2 s).
  TimeNs python_cold_start_ns = 3200 * kMillisecond;
  // Per-container memory overhead (paper §6.2: 8 MB per function container).
  size_t base_footprint_bytes = size_t{8} * 1024 * 1024;
  // Per-call overhead of the provider HTTP API used for chaining (§3.2:
  // "heavy use of HTTP APIs contributes further latency").
  TimeNs http_overhead_ns = 1 * kMillisecond;
  // Extra bytes per chained call for HTTP headers/envelope.
  size_t http_envelope_bytes = 600;
  // Awaiting a chained call polls the provider API.
  TimeNs await_poll_interval_ns = 2 * kMillisecond;
  size_t await_poll_bytes = 256;
  // Docker daemon creation parallelism; with cold_start_ns this yields the
  // ~3 containers/s knee of Fig. 10.
  int max_concurrent_cold_starts = 8;
  // Maximum containers per host before the scheduler refuses (k8s pod limit).
  int max_containers_per_host = 120;
};

}  // namespace faasm

#endif  // FAASM_BASELINE_CONTAINER_MODEL_H_
