#include "mem/shared_region.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mem/page.h"

namespace faasm {

namespace {
int MemfdCreate(const char* name) {
  return static_cast<int>(syscall(SYS_memfd_create, name, 0));
}
}  // namespace

Result<std::unique_ptr<SharedRegion>> SharedRegion::Create(const std::string& name, size_t size) {
  if (size == 0) {
    return InvalidArgument("SharedRegion: size must be non-zero");
  }
  const size_t mapped_size = RoundUpTo(size, kHostPageBytes);

  int fd = MemfdCreate(name.c_str());
  if (fd < 0) {
    return Unavailable(std::string("memfd_create failed: ") + std::strerror(errno));
  }
  if (ftruncate(fd, static_cast<off_t>(mapped_size)) != 0) {
    close(fd);
    return ResourceExhausted(std::string("ftruncate failed: ") + std::strerror(errno));
  }

  void* view = mmap(nullptr, mapped_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (view == MAP_FAILED) {
    close(fd);
    return ResourceExhausted(std::string("mmap host view failed: ") + std::strerror(errno));
  }

  return std::unique_ptr<SharedRegion>(
      new SharedRegion(fd, size, mapped_size, static_cast<uint8_t*>(view)));
}

SharedRegion::~SharedRegion() {
  if (host_view_ != nullptr) {
    munmap(host_view_, mapped_size_);
  }
  if (fd_ >= 0) {
    close(fd_);
  }
}

}  // namespace faasm
