// Chaos tests for live shard rebalancing (ISSUE 4 acceptance): writer
// functions hammer counters through DDOs while hosts join and leave the
// sharded tier. Every acknowledged increment must be reflected in the final
// counter values — migration may stall ops (kWrongMaster redirects) but must
// never lose or double an update — and a distributed lock held across a
// migration keeps excluding a second acquirer.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>

#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {
namespace {

constexpr int kCounters = 8;

std::string CounterKey(int i) { return "counter-" + std::to_string(i); }

// Registers "inc": reads a counter index from the input, then performs an
// exact cross-host increment — global write lock, invalidate + pull (the
// lock makes the re-pull see every prior push), increment, delta push,
// unlock. Any failure path returns a distinct nonzero code so a lost ack is
// distinguishable from a refused one.
void RegisterIncrement(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("inc",
                                  [](InvocationContext& ctx) {
                                    ByteReader reader(ctx.Input());
                                    auto index = reader.Get<uint32_t>();
                                    if (!index.ok()) {
                                      return 1;
                                    }
                                    SharedArray<uint64_t> counter(&ctx.state(),
                                                                  CounterKey(index.value()));
                                    if (!counter.kv().LockGlobalWrite().ok()) {
                                      return 2;
                                    }
                                    counter.kv().InvalidateReplica();
                                    if (!counter.Attach().ok()) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 3;
                                    }
                                    uint64_t* value = counter.WritableElements(0, 1);
                                    if (value == nullptr) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 4;
                                    }
                                    *value += 1;
                                    counter.MarkDirtyElements(0, 1);
                                    const bool pushed = counter.Push().ok();
                                    const bool unlocked =
                                        counter.kv().UnlockGlobalWrite().ok();
                                    return pushed && unlocked ? 0 : 5;
                                  })
                  .ok());
}

uint64_t ReadCounter(FaasmCluster& cluster, int i) {
  auto value = cluster.kvs().Get(CounterKey(i));
  if (!value.ok() || value.value().size() != sizeof(uint64_t)) {
    ADD_FAILURE() << "counter " << i << " unreadable: " << value.status().ToString();
    return 0;
  }
  uint64_t count = 0;
  std::memcpy(&count, value.value().data(), sizeof(count));
  return count;
}

TEST(RebalanceTest, NoAcknowledgedIncrementLostAcrossHostChurn) {
  ClusterConfig config;
  config.hosts = 4;  // sharded tier is the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  RegisterIncrement(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  std::array<uint64_t, kCounters> acked{};

  cluster.Run([&](Frontend& frontend) {
    // Each round: launch a batch of increments, churn the membership while
    // they are in flight, then await the batch. The schedule removes both
    // original hosts (shards populated since epoch 0) and a freshly added
    // one, wandering between 4 and 5 hosts.
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},          // + host-4
        {false, "host-1"},   // - an original host
        {true, ""},          // + host-5
        {false, "host-4"},   // - a host added under load
        {true, ""},          // + host-6
        {false, "host-0"},   // - another original
    };
    for (const auto& [add, name] : churn) {
      std::vector<std::pair<uint64_t, uint32_t>> batch;
      for (int i = 0; i < 3 * kCounters; ++i) {
        const uint32_t counter = i % kCounters;
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(counter);
        auto id = frontend.Submit("inc", std::move(input));
        ASSERT_TRUE(id.ok());
        batch.emplace_back(id.value(), counter);
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (const auto& [id, counter] : batch) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "increment refused mid-churn";
        acked[counter] += 1;
      }
    }
  });

  // Six membership changes happened and keys really moved between shards.
  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_EQ(cluster.shard_map().shard_count(), 4u);  // 4 seed + 3 added - 3 removed
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_GT(cluster.migration_stats().bytes_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 6u);

  // THE acceptance property: every acknowledged increment — and nothing
  // else — is in the final values, wherever each key's master ended up.
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
}

// Registers "inc_all": one call increments EVERY counter exactly once
// through the BATCHED push path — global write locks on all counters
// (ordered, so concurrent calls serialise instead of deadlocking), fresh
// pulls, increments, deferred pushes inside one StateBatch scope, then the
// scope's flush barrier (per-op kWrongMaster retry underneath) and the
// unlocks. The call acks only if the barrier and every unlock succeeded.
void RegisterBatchedIncrementAll(FaasmCluster& cluster) {
  ASSERT_TRUE(
      cluster.registry()
          .RegisterNative(
              "inc_all",
              [](InvocationContext& ctx) {
                std::array<std::unique_ptr<SharedArray<uint64_t>>, kCounters> counters;
                for (int i = 0; i < kCounters; ++i) {
                  counters[i] = std::make_unique<SharedArray<uint64_t>>(&ctx.state(),
                                                                       CounterKey(i));
                  if (!counters[i]->kv().LockGlobalWrite().ok()) {
                    for (int j = 0; j < i; ++j) {
                      (void)counters[j]->kv().UnlockGlobalWrite();
                    }
                    return 2;
                  }
                }
                int code = 0;
                // Pull + increment everything BEFORE the batch scope: Pull
                // is itself a flush barrier, so pulls interleaved with the
                // deferred pushes would flush them one by one.
                for (int i = 0; i < kCounters && code == 0; ++i) {
                  counters[i]->kv().InvalidateReplica();
                  if (!counters[i]->Attach().ok()) {
                    code = 3;
                    break;
                  }
                  uint64_t* value = counters[i]->WritableElements(0, 1);
                  if (value == nullptr) {
                    code = 4;
                    break;
                  }
                  *value += 1;
                  counters[i]->MarkDirtyElements(0, 1);
                }
                if (code == 0) {
                  StateBatch batch(ctx.state());
                  for (int i = 0; i < kCounters && code == 0; ++i) {
                    if (!counters[i]->Push().ok()) {  // accepted into the batch
                      code = 5;
                    }
                  }
                  // THE barrier: all eight pushes become durable here, in at
                  // most one RPC per master shard, before any lock releases.
                  if (!batch.Close().ok() && code == 0) {
                    code = 6;
                  }
                }
                for (int i = kCounters - 1; i >= 0; --i) {
                  if (!counters[i]->kv().UnlockGlobalWrite().ok() && code == 0) {
                    code = 7;
                  }
                }
                return code;
              })
          .ok());
}

TEST(RebalanceTest, BatchedCountersSurviveHostChurnWithoutLostAcks) {
  // The PR-4 churn harness rerun through the BATCHED path: counters are
  // hammered via StateBatch-scoped multi-key pushes while six membership
  // changes migrate their masters underneath. A batch racing a migration
  // bounces per op and retries only the bounced ops; every acked call must
  // be reflected exactly once in the final values.
  ClusterConfig config;
  config.hosts = 4;
  ASSERT_TRUE(config.batch_state_ops);  // batched protocol is the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  RegisterBatchedIncrementAll(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  uint64_t acked_calls = 0;

  cluster.Run([&](Frontend& frontend) {
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},         {false, "host-1"}, {true, ""},
        {false, "host-4"},  {true, ""},        {false, "host-0"},
    };
    for (const auto& [add, name] : churn) {
      std::vector<uint64_t> batch_ids;
      for (int i = 0; i < 4; ++i) {
        auto id = frontend.Submit("inc_all", Bytes{});
        ASSERT_TRUE(id.ok());
        batch_ids.push_back(id.value());
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (uint64_t id : batch_ids) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "batched increment refused mid-churn";
        acked_calls += 1;
      }
    }
  });

  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 6u);

  // Every acked call incremented every counter exactly once — nothing lost,
  // nothing doubled, wherever each key's master ended up.
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked_calls) << CounterKey(i);
  }
}

constexpr int kFrozenKeys = 12;
constexpr size_t kFrozenBytes = 64;

std::string FrozenKey(int i) { return "frozen-" + std::to_string(i); }

// Registers "read_all": drops every local replica, then pulls all frozen
// keys through the GROUPED read path (one kGetBatch per master endpoint,
// per-op kWrongMaster retry underneath) and byte-checks each value against
// its seeded pattern. Distinct nonzero codes separate a refused prefetch
// from a stale or torn read.
void RegisterBatchedReadAll(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("read_all",
                                  [](InvocationContext& ctx) {
                                    std::vector<std::string> keys;
                                    for (int i = 0; i < kFrozenKeys; ++i) {
                                      keys.push_back(FrozenKey(i));
                                      ctx.state().Lookup(keys.back())->InvalidateReplica();
                                    }
                                    if (!ctx.state().Prefetch(keys).ok()) {
                                      return 2;
                                    }
                                    for (int i = 0; i < kFrozenKeys; ++i) {
                                      auto kv = ctx.state().Lookup(keys[i]);
                                      if (kv->Pull().ok() == false || kv->size() != kFrozenBytes) {
                                        return 3;
                                      }
                                      const uint8_t* bytes = kv->data();
                                      for (size_t b = 0; b < kFrozenBytes; ++b) {
                                        if (bytes[b] != uint8_t(i + 1)) {
                                          return 4;  // stale or torn read
                                        }
                                      }
                                    }
                                    return 0;
                                  })
                  .ok());
}

TEST(RebalanceTest, BatchedReadsSurviveHostChurnWithoutBadReads) {
  // The read-side churn harness: immutable values are prefetched via
  // kGetBatch groups while six membership changes migrate their masters
  // underneath. A grouped read racing a migration bounces per op and
  // retries against the new route; every acked call must have observed
  // every key's exact seeded bytes — zero stale or torn reads.
  ClusterConfig config;
  config.hosts = 4;
  ASSERT_TRUE(config.batch_state_reads);  // grouped reads are the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kFrozenKeys; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(FrozenKey(i), Bytes(kFrozenBytes, uint8_t(i + 1))).ok());
  }
  RegisterBatchedReadAll(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  uint64_t acked_calls = 0;

  cluster.Run([&](Frontend& frontend) {
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},         {false, "host-1"}, {true, ""},
        {false, "host-4"},  {true, ""},        {false, "host-0"},
    };
    for (const auto& [add, name] : churn) {
      std::vector<uint64_t> batch_ids;
      for (int i = 0; i < 4; ++i) {
        auto id = frontend.Submit("read_all", Bytes{});
        ASSERT_TRUE(id.ok());
        batch_ids.push_back(id.value());
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (uint64_t id : batch_ids) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "batched read failed mid-churn";
        acked_calls += 1;
      }
    }
  });

  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(acked_calls, 24u);
}

TEST(RebalanceTest, ReplicaServedReadsSurviveChurnAndCrashesWithoutBadReads) {
  // The replica-read chaos harness: the same byte-checked read_all workload,
  // but with R=2 co-located replica serving ON (the default) while six
  // membership changes churn the ring and two hosts crash with NO oracle —
  // only the heartbeat detector notices. Acceptance: zero stale reads, zero
  // torn reads (code 4 never comes back, even from calls racing a crash),
  // the replica tier demonstrably served (its serves are what the churn is
  // trying to poison), and no read was ever served by a fenced mirror.
  ClusterConfig config;
  config.hosts = 5;
  config.replication_factor = 2;
  config.failure_detection = true;
  ASSERT_TRUE(config.replica_reads);       // the three-tier path is the default
  ASSERT_TRUE(config.replication_sync);    // acked writes cover every backup
  FaasmCluster cluster(config);
  for (int i = 0; i < kFrozenKeys; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(FrozenKey(i), Bytes(kFrozenBytes, uint8_t(i + 1))).ok());
  }
  RegisterBatchedReadAll(cluster);

  uint64_t clean_calls = 0;    // code 0
  uint64_t refused_calls = 0;  // codes 2/3 or mail failure, crash rounds only
  uint64_t fenced_mirror_serves = 0;
  uint64_t deaths_confirmed = 0;

  cluster.Run([&](Frontend& frontend) {
    // '+' add, '-<name>' remove, '!<name>' crash (detector-confirmed).
    const std::vector<std::string> schedule = {
        "+", "!host-1", "-host-2", "+", "!host-5", "+", "-host-0", "+",
    };
    for (const std::string& step : schedule) {
      const bool crash_round = step[0] == '!';
      std::vector<uint64_t> batch_ids;
      for (int i = 0; i < 3; ++i) {
        auto id = frontend.Submit("read_all", Bytes{});
        ASSERT_TRUE(id.ok());
        batch_ids.push_back(id.value());
      }

      if (step == "+") {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else if (crash_round) {
        const std::string victim = step.substr(1);
        const TimeNs crashed_at = cluster.clock().Now();
        ASSERT_TRUE(cluster.CrashHost(victim).ok());  // no oracle after this
        const FailureDetector* detector = cluster.failure_detector();
        ASSERT_NE(detector, nullptr);
        deaths_confirmed += 1;
        ASSERT_TRUE(cluster.clock().WaitFor(
            [&] { return detector->death_count() >= deaths_confirmed; },
            100 * kMicrosecond, crashed_at + 2 * kSecond))
            << "detector never confirmed the crash of " << victim;
        // The corpse's mirror is fenced by recovery; from here on its serve
        // counter must not move (a fenced ReadValue bounces WITHOUT
        // counting, so any tick would be a serve that escaped the fence).
        const ReplicaShard* mirror = cluster.replication()->ReplicaForHost(victim);
        ASSERT_NE(mirror, nullptr);
        EXPECT_TRUE(mirror->fenced());
        fenced_mirror_serves += mirror->replica_read_count();
      } else {
        Status removed = cluster.RemoveHost(step.substr(1));
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (uint64_t id : batch_ids) {
        auto code = frontend.Await(id);
        if (code.ok() && code.value() == 0) {
          clean_calls += 1;
          continue;
        }
        // A call racing a crash may be refused (dead master, recovery in
        // flight) or lost with the host running it — but it must NEVER
        // return bad bytes: code 4 is a stale or torn read, the one
        // outcome the replica tier is not allowed to produce.
        ASSERT_TRUE(crash_round) << "read refused outside a crash round: "
                                 << (code.ok() ? std::to_string(code.value())
                                               : code.status().ToString());
        if (code.ok()) {
          ASSERT_NE(code.value(), 4) << "stale or torn read mid-crash";
        }
        refused_calls += 1;
      }
    }

    // The replica tier actually served under churn: sum the per-client
    // counters across the hosts still alive.
    uint64_t replica_serves = 0;
    for (size_t i = 0; i < cluster.host_count(); ++i) {
      replica_serves += cluster.host(i).kvs().replica_served_count();
    }
    EXPECT_GT(replica_serves, 0u) << "churn suite never exercised the replica tier";

    // The fenced mirrors stayed silent for the rest of the run.
    uint64_t fenced_now = 0;
    for (const std::string& victim : {std::string("host-1"), std::string("host-5")}) {
      const ReplicaShard* mirror = cluster.replication()->ReplicaForHost(victim);
      ASSERT_NE(mirror, nullptr);
      EXPECT_TRUE(mirror->fenced());
      fenced_now += mirror->replica_read_count();
    }
    EXPECT_EQ(fenced_now, fenced_mirror_serves) << "a fenced mirror served a read";
  });

  // Every call resolved; most ran clean. Refusals are bounded by the calls
  // in flight across the two crash rounds.
  EXPECT_EQ(clean_calls + refused_calls, 24u);
  EXPECT_LE(refused_calls, 6u);
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(cluster.failover_stats().lost_keys, 0u);

  // The frozen values themselves are intact after all eight disruptions.
  for (int i = 0; i < kFrozenKeys; ++i) {
    auto value = cluster.kvs().Get(FrozenKey(i));
    ASSERT_TRUE(value.ok()) << FrozenKey(i) << ": " << value.status().ToString();
    EXPECT_EQ(value.value(), Bytes(kFrozenBytes, uint8_t(i + 1)));
  }
}

TEST(RebalanceTest, LockHeldAcrossMigrationStillExcludes) {
  ClusterConfig config;
  config.hosts = 4;
  FaasmCluster cluster(config);

  // Pick a key that WILL move to the next host added ("host-4"): the
  // prospective assignment is a pure function of the endpoint set.
  const ShardAssignment before = cluster.shard_map().Snapshot();
  const ShardAssignment after = before.With(ShardMap::EndpointForHost("host-4"));
  std::string key;
  for (int i = 0; i < 100000 && key.empty(); ++i) {
    std::string probe = "lock-probe-" + std::to_string(i);
    if (before.MasterFor(probe) != after.MasterFor(probe)) {
      key = std::move(probe);
    }
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(cluster.kvs().Set(key, Bytes{1, 2, 3}).ok());

  cluster.Run([&](Frontend&) {
    // host-0 takes the global write lock, the key migrates to the new
    // host's shard, and the lock must keep excluding host-1 afterwards.
    ASSERT_TRUE(cluster.host(0).kvs().TryLockWrite(key).value());

    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(cluster.shard_map().MasterFor(key), ShardMap::EndpointForHost(added.value()));

    EXPECT_FALSE(cluster.host(1).kvs().TryLockWrite(key).value());
    EXPECT_FALSE(cluster.host(1).kvs().TryLockRead(key).value());
    // Ownership travelled with the key: the original holder unlocks against
    // the NEW master, then the second acquirer gets in.
    ASSERT_TRUE(cluster.host(0).kvs().UnlockWrite(key).ok());
    EXPECT_TRUE(cluster.host(1).kvs().TryLockWrite(key).value());
    ASSERT_TRUE(cluster.host(1).kvs().UnlockWrite(key).ok());

    // The value itself survived the move.
    EXPECT_EQ(cluster.host(2).kvs().Read(key).value(), (Bytes{1, 2, 3}));
  });
}

TEST(RebalanceTest, RemovedHostsShardEndsEmpty) {
  // After a removal every key the leaver mastered is readable through the
  // survivors — the leaver's shard keeps no data, and its live-map
  // ownership guard bounces any straggler op.
  ClusterConfig config;
  config.hosts = 3;
  FaasmCluster cluster(config);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cluster.kvs().Set("seed-" + std::to_string(i), Bytes(128, 1)).ok());
  }
  cluster.Run([&](Frontend&) {
    ASSERT_TRUE(cluster.RemoveHost("host-2").ok());
    for (int i = 0; i < 32; ++i) {
      auto value = cluster.kvs().Get("seed-" + std::to_string(i));
      ASSERT_TRUE(value.ok()) << "seed-" << i << ": " << value.status().ToString();
      EXPECT_EQ(value.value().size(), 128u);
      EXPECT_NE(cluster.shard_map().MasterFor("seed-" + std::to_string(i)),
                ShardMap::EndpointForHost("host-2"));
    }
  });
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 1u);
}

}  // namespace
}  // namespace faasm
