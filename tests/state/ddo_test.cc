// DDO tests: typed views over the two-tier state (Listing 1 analogues).
#include "state/ddo.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

class DdoTest : public ::testing::Test {
 protected:
  DdoTest()
      : network_(&clock_, NoLatency()),
        server_(&store_, &network_),
        kvs_(&network_, "host-0"),
        tier_(&kvs_, &clock_) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore store_;
  KvsServer server_;
  KvsClient kvs_;
  LocalTier tier_;
};

TEST_F(DdoTest, SharedArrayInitPushPull) {
  SharedArray<double> array(&tier_, "vec");
  ASSERT_TRUE(array.Init(100).ok());
  for (size_t i = 0; i < 100; ++i) {
    array[i] = static_cast<double>(i);
  }
  ASSERT_TRUE(array.Push().ok());
  EXPECT_EQ(store_.Size("vec").value(), 800u);

  // A second view (another function on the same host) sees the same memory.
  SharedArray<double> view(&tier_, "vec");
  ASSERT_TRUE(view.Init(100).ok());
  EXPECT_EQ(view[42], 42.0);
  view[42] = -1.0;
  EXPECT_EQ(array[42], -1.0);  // zero-copy sharing
}

TEST_F(DdoTest, SharedArrayAttachFromGlobal) {
  std::vector<double> seed(50, 3.25);
  const auto* p = reinterpret_cast<const uint8_t*>(seed.data());
  store_.Set("vec", Bytes(p, p + 50 * sizeof(double)));

  SharedArray<double> array(&tier_, "vec");
  ASSERT_TRUE(array.Attach().ok());
  EXPECT_EQ(array.size(), 50u);
  EXPECT_EQ(array[49], 3.25);
}

TEST_F(DdoTest, AsyncArrayBatchesPushes) {
  AsyncArray<double> array(&tier_, "weights", /*push_interval=*/4);
  ASSERT_TRUE(array.Init(10).ok());
  network_.ResetStats();
  for (int update = 0; update < 3; ++update) {
    array[0] += 1.0;
    ASSERT_TRUE(array.MaybePush().ok());
  }
  EXPECT_EQ(network_.total_bytes(), 0u);  // below interval: fully local
  array[0] += 1.0;
  ASSERT_TRUE(array.MaybePush().ok());  // 4th update triggers the push
  EXPECT_GT(network_.total_bytes(), 10 * sizeof(double));
  EXPECT_EQ(store_.Size("weights").value(), 10 * sizeof(double));
}

TEST_F(DdoTest, ReadOnlyMatrixPullsColumnRanges) {
  const size_t rows = 64;
  const size_t cols = 512;
  std::vector<double> m(rows * cols);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      m[c * rows + r] = static_cast<double>(c * 1000 + r);
    }
  }
  const auto* p = reinterpret_cast<const uint8_t*>(m.data());
  store_.Set("matrix", Bytes(p, p + m.size() * sizeof(double)));

  ReadOnlyMatrix<double> matrix(&tier_, "matrix", rows, cols);
  ASSERT_TRUE(matrix.Init().ok());
  network_.ResetStats();
  ASSERT_TRUE(matrix.PullColumns(100, 110).ok());
  EXPECT_EQ(matrix.At(5, 105), 105005.0);
  // Only ~10 columns of 512 transferred (+ small protocol envelope).
  EXPECT_LT(network_.total_bytes(), 16 * rows * sizeof(double) + 512);
}

TEST_F(DdoTest, SparseMatrixPullsColumnSlices) {
  // 3 columns: col0 = {(0, 1.0)}, col1 = {(1, 2.0), (2, 3.0)}, col2 = {}.
  std::vector<double> vals = {1.0, 2.0, 3.0};
  std::vector<uint32_t> rows = {0, 1, 2};
  std::vector<uint64_t> cols = {0, 1, 3, 3};
  auto put = [this](const std::string& key, const void* data, size_t bytes) {
    const auto* p = static_cast<const uint8_t*>(data);
    store_.Set(key, Bytes(p, p + bytes));
  };
  put("sm:vals", vals.data(), vals.size() * sizeof(double));
  put("sm:rows", rows.data(), rows.size() * sizeof(uint32_t));
  put("sm:cols", cols.data(), cols.size() * sizeof(uint64_t));

  SparseMatrixCsc matrix(&tier_, "sm");
  ASSERT_TRUE(matrix.Attach().ok());
  EXPECT_EQ(matrix.num_cols(), 3u);
  ASSERT_TRUE(matrix.PullColumns(1, 2).ok());
  EXPECT_EQ(matrix.col_ptr()[1], 1u);
  EXPECT_EQ(matrix.values()[1], 2.0);
  EXPECT_EQ(matrix.values()[2], 3.0);
  EXPECT_EQ(matrix.row_indices()[2], 2u);
}

TEST_F(DdoTest, AppendLogRoundTrip) {
  AppendLog<double> log(&tier_, "losses");
  EXPECT_TRUE(log.ReadAll().value().empty());
  ASSERT_TRUE(log.Append(0.5).ok());
  ASSERT_TRUE(log.Append(0.25).ok());
  auto records = log.ReadAll();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records.value(), (std::vector<double>{0.5, 0.25}));
}

}  // namespace
}  // namespace faasm
