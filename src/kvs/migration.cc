#include "kvs/migration.h"

#include <set>

#include "common/log.h"

namespace faasm {

namespace {
// Minimal response parse for the kMigrateInstall RPC (mirrors the
// status-first layout every KvsServer response uses).
Status InstallResponseStatus(const Bytes& response) {
  ByteReader reader(response);
  auto code = reader.Get<uint8_t>();
  if (!code.ok()) {
    return Internal("migration: malformed install response");
  }
  const auto status_code = static_cast<StatusCode>(code.value());
  if (status_code == StatusCode::kOk) {
    return OkStatus();
  }
  return Status(status_code, "migration: install rejected");
}
}  // namespace

KvStore* ShardMigrator::StoreAt(const std::string& endpoint) const {
  auto it = stores_->find(endpoint);
  return it == stores_->end() ? nullptr : it->second;
}

Result<uint64_t> ShardMigrator::Stream(const KeyMove& move) {
  KvStore* source = StoreAt(move.from);
  if (source == nullptr) {
    return Internal("migration: no store for source shard " + move.from);
  }
  const KeyExport record = source->ExportKey(move.key);
  if (record.empty()) {
    // The footprint vanished between the plan and the freeze (e.g. a lock
    // released and its key deleted): nothing to carry.
    return uint64_t{0};
  }
  Bytes request;
  request.reserve(16);  // quiets a GCC 12 -Wstringop-overflow false positive
  ByteWriter writer(request);
  writer.Put<uint8_t>(static_cast<uint8_t>(KvsOp::kMigrateInstall));
  writer.PutString(move.key);
  writer.PutBytes(record.Serialize());
  // The stream rides the cluster interconnect shard→shard, so migration
  // traffic is byte-accounted and latency-charged like any replica sync.
  FAASM_ASSIGN_OR_RETURN(Bytes response, network_->Call(move.from, move.to, request));
  FAASM_RETURN_IF_ERROR(InstallResponseStatus(response));
  return static_cast<uint64_t>(request.size());
}

Result<MigrationStats> ShardMigrator::Execute(const std::vector<std::string>& sources,
                                              const ShardAssignment& after,
                                              const std::function<void()>& flip) {
  MigrationStats stats;
  for (const std::string& source : sources) {
    if (StoreAt(source) == nullptr) {
      return Internal("migration: no store for source shard " + source);
    }
  }

  // FILTER: from here on, no op can create or mutate a key that is about to
  // change master on any source shard — including keys that do not exist
  // yet — so the listing below is complete by construction.
  for (const std::string& source : sources) {
    StoreAt(source)->SetMigrationFilter(
        [after, source](const std::string& key) { return after.MasterFor(key) != source; });
  }
  auto clear_filters = [&] {
    for (const std::string& source : sources) {
      StoreAt(source)->ClearMigrationFilter();
    }
  };

  // PLAN: the moving keys, off the now-stable source listings.
  const ShardAssignment before = map_->Snapshot();
  std::set<std::string> keys;
  for (const std::string& source : sources) {
    for (std::string& key : StoreAt(source)->Keys()) {
      keys.insert(std::move(key));
    }
  }
  const std::vector<KeyMove> moves =
      DiffKeys(before, after, std::vector<std::string>(keys.begin(), keys.end()));

  // FREEZE + STREAM. Each key is frozen before its export, so every write
  // either lands before the copy (and is carried) or bounces with
  // kWrongMaster until the flip re-routes it to the new master. Every
  // install lands BEFORE the flip: a write the new master accepts can never
  // race a stale install.
  for (size_t i = 0; i < moves.size(); ++i) {
    KvStore* source = StoreAt(moves[i].from);
    Status failure = source == nullptr
                         ? Internal("migration: no store for source shard " + moves[i].from)
                         : OkStatus();
    if (failure.ok()) {
      source->FreezeKey(moves[i].key);
      auto streamed = Stream(moves[i]);
      if (streamed.ok()) {
        stats.keys_moved += 1;
        stats.bytes_moved += streamed.value();
        continue;
      }
      failure = streamed.status();
    }
    // Abandon the membership change: unfreeze the batch, drop the installs
    // already streamed (their destinations never became masters), clear the
    // filters. The old epoch keeps serving everything.
    for (size_t j = 0; j <= i && j < moves.size(); ++j) {
      if (KvStore* frozen_source = StoreAt(moves[j].from); frozen_source != nullptr) {
        frozen_source->UnfreezeKey(moves[j].key);
      }
      if (KvStore* destination = StoreAt(moves[j].to); destination != nullptr && j < i) {
        destination->EraseKey(moves[j].key);
      }
    }
    clear_filters();
    return failure;
  }

  // FLIP. From here on, fresh routes resolve to the new assignment, which
  // already holds every moving key. Nothing below can fail.
  flip();
  stats.epoch_flips += 1;

  // ERASE the moved keys from their sources and lift the filters. Straggler
  // ops that still reach a stale shard bounce on its live-map ownership
  // guard and retry against the new route.
  for (const KeyMove& move : moves) {
    StoreAt(move.from)->EraseKey(move.key);
  }
  clear_filters();
  return stats;
}

Result<MigrationStats> ShardMigrator::AddShard(const std::string& endpoint) {
  if (StoreAt(endpoint) == nullptr) {
    return FailedPrecondition("migration: store for " + endpoint + " not attached");
  }
  const ShardAssignment before = map_->Snapshot();
  if (before.endpoints().count(endpoint) > 0) {
    return MigrationStats{};  // already a member: nothing to do
  }
  // Keys can move to the new shard from ANY current member.
  const std::vector<std::string> sources(before.endpoints().begin(), before.endpoints().end());
  return Execute(sources, before.With(endpoint), [&] { map_->AddShard(endpoint); });
}

Result<MigrationStats> ShardMigrator::RemoveShard(const std::string& endpoint) {
  const ShardAssignment before = map_->Snapshot();
  if (before.endpoints().count(endpoint) == 0) {
    return NotFound("migration: " + endpoint + " is not a member");
  }
  if (before.endpoints().size() <= 1) {
    return FailedPrecondition("migration: cannot remove the last shard");
  }
  // Consistent hashing moves keys only FROM the removed shard.
  return Execute({endpoint}, before.Without(endpoint), [&] { map_->RemoveShard(endpoint); });
}

}  // namespace faasm
