#include "mem/dirty_tracker.h"

#include <algorithm>

namespace faasm {

namespace {
size_t ShiftFor(size_t page_bytes) {
  size_t shift = 0;
  while ((size_t{1} << shift) < page_bytes) {
    ++shift;
  }
  return shift;
}
}  // namespace

DirtyTracker::DirtyTracker(size_t size_bytes, size_t page_bytes)
    : page_bytes_(page_bytes),
      page_shift_(ShiftFor(page_bytes)),
      page_count_((size_bytes + page_bytes - 1) / page_bytes),
      words_(new std::atomic<uint64_t>[(page_count_ + 63) / 64]),
      word_count_((page_count_ + 63) / 64) {
  for (size_t i = 0; i < word_count_; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

void DirtyTracker::MarkDirty(size_t offset, size_t len) {
  if (len == 0 || page_count_ == 0) {
    return;
  }
  const size_t first = offset >> page_shift_;
  if (first >= page_count_) {
    return;  // entirely past the tracked extent (e.g. a mapping tail)
  }
  const size_t last = std::min((offset + len - 1) >> page_shift_, page_count_ - 1);
  if (!ever_marked_.load(std::memory_order_relaxed)) {
    ever_marked_.store(true, std::memory_order_relaxed);
  }
  for (size_t page = first; page <= last;) {
    const size_t word = page / 64;
    const size_t bit = page % 64;
    const size_t last_in_word = std::min(last, word * 64 + 63);
    uint64_t mask;
    if (bit == 0 && last_in_word == word * 64 + 63) {
      mask = ~uint64_t{0};
    } else {
      mask = 0;
      for (size_t p = page; p <= last_in_word; ++p) {
        mask |= uint64_t{1} << (p % 64);
      }
    }
    // Marking sits on the interpreter's store path; after the first store to
    // a page every further mark is redundant, so pay one relaxed load and
    // skip the RMW when the bits are already set.
    if ((words_[word].load(std::memory_order_relaxed) & mask) != mask) {
      words_[word].fetch_or(mask, std::memory_order_relaxed);
    }
    page = last_in_word + 1;
  }
}

bool DirtyTracker::any_dirty() const {
  for (size_t i = 0; i < word_count_; ++i) {
    if (words_[i].load(std::memory_order_relaxed) != 0) {
      return true;
    }
  }
  return false;
}

size_t DirtyTracker::dirty_page_count() const {
  size_t count = 0;
  for (size_t i = 0; i < word_count_; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words_[i].load(std::memory_order_relaxed)));
  }
  return count;
}

std::vector<DirtyRun> DirtyTracker::ScanRuns(bool clear) {
  // Word-at-a-time scan: the common case (a mostly-clean bitmap, e.g. a warm
  // Faaslet reset) costs one relaxed load per 64 pages, so the scan stays in
  // the microsecond range even for multi-GB extents.
  std::vector<DirtyRun> runs;
  size_t run_start = SIZE_MAX;
  auto close_run = [&](size_t page) {
    if (run_start != SIZE_MAX) {
      runs.push_back(DirtyRun{run_start << page_shift_, (page - run_start) << page_shift_});
      run_start = SIZE_MAX;
    }
  };
  for (size_t w = 0; w < word_count_; ++w) {
    const uint64_t word = clear ? words_[w].exchange(0, std::memory_order_relaxed)
                                : words_[w].load(std::memory_order_relaxed);
    if (word == 0) {
      close_run(w * 64);
      continue;
    }
    if (word == ~uint64_t{0}) {
      if (run_start == SIZE_MAX) {
        run_start = w * 64;
      }
      continue;
    }
    for (size_t bit = 0; bit < 64; ++bit) {
      const size_t page = w * 64 + bit;
      if ((word >> bit) & 1) {
        if (run_start == SIZE_MAX) {
          run_start = page;
        }
      } else {
        close_run(page);
      }
    }
  }
  close_run(page_count_);
  return runs;
}

std::vector<DirtyRun> DirtyTracker::CollectDirtyRuns() const {
  return const_cast<DirtyTracker*>(this)->ScanRuns(/*clear=*/false);
}

std::vector<DirtyRun> DirtyTracker::CollectAndClearDirtyRuns() {
  return ScanRuns(/*clear=*/true);
}

void DirtyTracker::ClearDirty() {
  for (size_t i = 0; i < word_count_; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace faasm
