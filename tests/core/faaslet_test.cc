// Faaslet tests: isolation, host interface (Table 2), shared state mapping,
// Proto-Faaslet snapshot/restore, vnet and filesystem behaviour.
#include "core/faaslet.h"

#include <gtest/gtest.h>

#include "core/guest_api.h"
#include "wasm/decoder.h"

namespace faasm {
namespace {

using wasm::Op;
using wasm::ValType;

class FaasletTest : public ::testing::Test {
 protected:
  FaasletTest()
      : network_(&clock_, NoLatency()),
        server_(&store_, &network_),
        kvs_(&network_, "host-0"),
        tier_(&kvs_, &clock_) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  FaasletEnv Env() {
    FaasletEnv env;
    env.clock = &clock_;
    env.tier = &tier_;
    env.files = &files_;
    env.network = &network_;
    env.host_endpoint = "host-0";
    return env;
  }

  std::shared_ptr<const wasm::CompiledModule> Compile(wasm::ModuleBuilder& b) {
    auto decoded = wasm::DecodeModule(b.Build());
    EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
    auto compiled = wasm::CompileModule(std::move(decoded).value());
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return compiled.value();
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore store_;
  KvsServer server_;
  KvsClient kvs_;
  LocalTier tier_;
  GlobalFileStore files_;
};

TEST_F(FaasletTest, NativeFunctionEchoes) {
  FunctionSpec spec;
  spec.name = "echo";
  spec.native = [](InvocationContext& ctx) {
    Bytes out = ctx.Input();
    out.push_back(0xFF);
    ctx.WriteOutput(std::move(out));
    return 0;
  };
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok()) << faaslet.status().ToString();
  auto code = faaslet.value()->Execute(Bytes{1, 2});
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(code.value(), 0);
  EXPECT_EQ(faaslet.value()->TakeOutput(), (Bytes{1, 2, 0xFF}));
}

TEST_F(FaasletTest, WasmEchoThroughHostInterface) {
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  const uint32_t len = f.AddLocal(ValType::kI32);
  // len = read_input(buf=64, 1024); write_output(64, len); return 7;
  f.I32Const(64);
  f.I32Const(1024);
  f.Call(api.read_input);
  f.LocalSet(len);
  f.I32Const(64);
  f.LocalGet(len);
  f.Call(api.write_output);
  f.I32Const(7);
  f.End();

  FunctionSpec spec;
  spec.name = "wasm_echo";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok()) << faaslet.status().ToString();
  auto code = faaslet.value()->Execute(Bytes{9, 8, 7});
  ASSERT_TRUE(code.ok()) << code.status().ToString();
  EXPECT_EQ(code.value(), 7);
  EXPECT_EQ(faaslet.value()->TakeOutput(), (Bytes{9, 8, 7}));
}

TEST_F(FaasletTest, GuestOutOfBoundsPointerTraps) {
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 1);
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  // write_output with a pointer outside linear memory must trap, not read
  // host memory.
  f.I32Const(0x7FFFFFF0);
  f.I32Const(64);
  f.Call(api.write_output);
  f.I32Const(0);
  f.End();

  FunctionSpec spec;
  spec.name = "oob";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  auto code = faaslet.value()->Execute({});
  ASSERT_FALSE(code.ok());
  EXPECT_TRUE(wasm::IsTrap(code.status()));
}

TEST_F(FaasletTest, TwoFaasletsShareStateZeroCopy) {
  store_.Set("shared", Bytes(4096, 0x00));

  auto build = [&] {
    wasm::ModuleBuilder b;
    GuestApi api = GuestApi::ImportAll(b);
    b.AddMemory(1, 16);
    auto [key_off, key_len] = GuestString(b, 16, "shared");
    // main: p = get_state("shared", 4096); pull; p[input[0]] += 1; return p[input[0]]
    auto& f = b.AddFunction("main", {}, {ValType::kI32});
    const uint32_t p = f.AddLocal(ValType::kI32);
    const uint32_t idx = f.AddLocal(ValType::kI32);
    f.I32Const(static_cast<int32_t>(key_off));
    f.I32Const(static_cast<int32_t>(key_len));
    f.I32Const(4096);
    f.Call(api.get_state);
    f.LocalSet(p);
    f.I32Const(static_cast<int32_t>(key_off));
    f.I32Const(static_cast<int32_t>(key_len));
    f.Call(api.pull_state);
    // idx = first input byte
    f.I32Const(8);
    f.I32Const(1);
    f.Call(api.read_input);
    f.Drop();
    f.I32Const(8);
    f.Load(Op::kI32Load8U);
    f.LocalSet(idx);
    // p[idx] += 1
    f.LocalGet(p);
    f.LocalGet(idx);
    f.Emit(Op::kI32Add);
    f.LocalGet(p);
    f.LocalGet(idx);
    f.Emit(Op::kI32Add);
    f.Load(Op::kI32Load8U);
    f.I32Const(1);
    f.Emit(Op::kI32Add);
    f.Store(Op::kI32Store8);
    // return p[idx]
    f.LocalGet(p);
    f.LocalGet(idx);
    f.Emit(Op::kI32Add);
    f.Load(Op::kI32Load8U);
    f.End();
    return Compile(b);
  };

  FunctionSpec spec;
  spec.name = "bump";
  spec.module = build();
  auto faaslet_a = Faaslet::Create(spec, Env());
  auto faaslet_b = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet_a.ok());
  ASSERT_TRUE(faaslet_b.ok());

  // A increments slot 5 twice, B once — all through the same physical bytes.
  EXPECT_EQ(faaslet_a.value()->Execute(Bytes{5}).value(), 1);
  EXPECT_EQ(faaslet_a.value()->Execute(Bytes{5}).value(), 2);
  EXPECT_EQ(faaslet_b.value()->Execute(Bytes{5}).value(), 3);
  // Host-side view agrees.
  EXPECT_EQ(tier_.Lookup("shared")->data()[5], 3);
}

TEST_F(FaasletTest, ResetClearsPrivateMemoryBetweenTenants) {
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 4);
  // main: old = mem[100]; mem[100] = input[0]; return old
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  const uint32_t old = f.AddLocal(ValType::kI32);
  f.I32Const(100);
  f.Load(Op::kI32Load8U);
  f.LocalSet(old);
  f.I32Const(8);
  f.I32Const(1);
  f.Call(api.read_input);
  f.Drop();
  f.I32Const(100);
  f.I32Const(8);
  f.Load(Op::kI32Load8U);
  f.Store(Op::kI32Store8);
  f.LocalGet(old);
  f.End();

  FunctionSpec spec;
  spec.name = "leak_probe";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  // Tenant 1 writes a secret.
  EXPECT_EQ(faaslet.value()->Execute(Bytes{0x77}).value(), 0);
  // Without a reset the secret would leak to the next call.
  EXPECT_EQ(faaslet.value()->Execute(Bytes{0x01}).value(), 0x77);
  // After reset, guaranteed clean (§5.2).
  ASSERT_TRUE(faaslet.value()->Reset().ok());
  EXPECT_EQ(faaslet.value()->Execute(Bytes{0x02}).value(), 0);
}

TEST_F(FaasletTest, RepeatedDirtyResetsStayClean) {
  // Warm resets restore only dirtied pages; leaks would show up as stale
  // bytes surviving a reset. Write to two pages far apart, reset, re-probe —
  // repeatedly, so every reset after the first exercises the delta path.
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  (void)api;
  b.AddMemory(1, 4);
  // main: old = mem[100] + mem[60000]; mem[100] = 5; mem[60000] = 7; return old
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  f.I32Const(100);
  f.Load(Op::kI32Load8U);
  f.I32Const(60000);
  f.Load(Op::kI32Load8U);
  f.Emit(Op::kI32Add);
  f.I32Const(100);
  f.I32Const(5);
  f.Store(Op::kI32Store8);
  f.I32Const(60000);
  f.I32Const(7);
  f.Store(Op::kI32Store8);
  f.End();

  FunctionSpec spec;
  spec.name = "dirty_probe";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(faaslet.value()->Execute({}).value(), 0) << "round " << round;
    ASSERT_TRUE(faaslet.value()->Reset().ok());
  }
  // Without a reset the writes persist — the probe really writes.
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 0);
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 12);
}

TEST_F(FaasletTest, DirtyResetZeroesPagesGrownBySbrk) {
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 8);
  // main: sbrk(one page); old = mem[70000]; mem[70000] = 9; return old
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  const uint32_t old = f.AddLocal(ValType::kI32);
  f.I32Const(65536);
  f.Call(api.sbrk);
  f.Drop();
  f.I32Const(70000);
  f.Load(Op::kI32Load8U);
  f.LocalSet(old);
  f.I32Const(70000);
  f.I32Const(9);
  f.Store(Op::kI32Store8);
  f.LocalGet(old);
  f.End();

  FunctionSpec spec;
  spec.name = "grow_probe";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 0);
  ASSERT_TRUE(faaslet.value()->Reset().ok());
  // The grown page lies past the creation snapshot; the dirty reset must
  // zero it, not leave the previous call's 9 behind.
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 0);
}

TEST_F(FaasletTest, GuestStoresIntoMappedStateFeedDeltaPush) {
  const size_t state_size = 4 * StateKeyValue::kStatePageBytes;
  store_.Set("shards", Bytes(state_size, 0x00));

  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 16);
  auto [key_off, key_len] = GuestString(b, 16, "shards");
  // main: p = get_state("shards", 4 pages); pull; p[2*page] = 42; return 0
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  const uint32_t p = f.AddLocal(ValType::kI32);
  f.I32Const(static_cast<int32_t>(key_off));
  f.I32Const(static_cast<int32_t>(key_len));
  f.I32Const(static_cast<int32_t>(state_size));
  f.Call(api.get_state);
  f.LocalSet(p);
  f.I32Const(static_cast<int32_t>(key_off));
  f.I32Const(static_cast<int32_t>(key_len));
  f.Call(api.pull_state);
  f.LocalGet(p);
  f.I32Const(static_cast<int32_t>(2 * StateKeyValue::kStatePageBytes));
  f.Emit(Op::kI32Add);
  f.I32Const(42);
  f.Store(Op::kI32Store8);
  f.I32Const(0);
  f.End();

  FunctionSpec spec;
  spec.name = "state_writer";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 0);

  // The raw store through the mapped region was forwarded to the replica's
  // dirty tracker: a host-side delta push ships just the touched page.
  auto kv = tier_.Lookup("shards");
  network_.ResetStats();
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_LT(network_.total_bytes(), 2 * StateKeyValue::kStatePageBytes);
  EXPECT_GT(network_.total_bytes(), 0u);
  EXPECT_EQ(store_.Get("shards").value()[2 * StateKeyValue::kStatePageBytes], 42);
}

TEST_F(FaasletTest, ResetUnmapsSharedState) {
  FunctionSpec spec;
  spec.name = "mapper";
  spec.native = [](InvocationContext&) { return 0; };
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  auto offset = faaslet.value()->MapStateIntoGuest("key1", 4096);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(faaslet.value()->memory().shared_mappings().size(), 1u);
  ASSERT_TRUE(faaslet.value()->Reset().ok());
  EXPECT_TRUE(faaslet.value()->memory().shared_mappings().empty());
  // Remapping after reset works and the replica is the same object.
  auto offset2 = faaslet.value()->MapStateIntoGuest("key1", 4096);
  ASSERT_TRUE(offset2.ok());
}

TEST_F(FaasletTest, ProtoFaasletCrossHostRestore) {
  // "Host 1": create, run init-like work, snapshot, serialise.
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  (void)api;
  b.AddMemory(1, 4);
  uint32_t g = b.AddGlobal(ValType::kI32, true, wasm::MakeI32(0));
  auto& init = b.AddFunction("init", {}, {});
  init.I32Const(1234);
  init.GlobalSet(g);
  init.I32Const(200);
  init.I32Const(99);
  init.Store(Op::kI32Store);
  init.End();
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  f.GlobalGet(g);
  f.I32Const(200);
  f.Load(Op::kI32Load);
  f.Emit(Op::kI32Add);
  f.End();

  FunctionSpec spec;
  spec.name = "proto_fn";
  spec.module = Compile(b);
  spec.wasm_init_export = "init";

  auto original = Faaslet::Create(spec, Env());
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  auto proto = ProtoFaaslet::CaptureFrom(*original.value());
  ASSERT_TRUE(proto.ok());
  Bytes wire = proto.value()->Serialize();

  // "Host 2": deserialise and restore into a fresh Faaslet without running
  // the init code.
  auto remote_proto = ProtoFaaslet::Deserialize(wire);
  ASSERT_TRUE(remote_proto.ok());
  FunctionSpec bare = spec;
  bare.wasm_init_export.clear();  // init must not be needed
  auto restored = Faaslet::CreateFromProto(bare, Env(), remote_proto.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto out = restored.value()->Execute({});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), 1234 + 99);
}

TEST_F(FaasletTest, SimulatedInitCapturedBySnapshot) {
  FunctionSpec spec;
  spec.name = "slow_init";
  spec.native = [](InvocationContext&) { return 0; };
  spec.simulated_init_ns = 0;  // keep the test fast; semantics tested via flag
  bool init_ran = false;
  spec.native_init = [&init_ran](InvocationContext&) {
    init_ran = true;
    return OkStatus();
  };
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  EXPECT_TRUE(init_ran);

  // Proto-based creation skips initialisation entirely.
  init_ran = false;
  auto proto = ProtoFaaslet::CaptureFrom(*faaslet.value());
  ASSERT_TRUE(proto.ok());
  auto fast = Faaslet::CreateFromProto(spec, Env(), proto.value());
  ASSERT_TRUE(fast.ok());
  EXPECT_FALSE(init_ran);
}

TEST_F(FaasletTest, FilesystemFromGuest) {
  files_.Put("/model/params", Bytes{0xAB, 0xCD});

  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 4);
  auto [path_off, path_len] = GuestString(b, 16, "/model/params");
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  const uint32_t fd = f.AddLocal(ValType::kI32);
  f.I32Const(static_cast<int32_t>(path_off));
  f.I32Const(static_cast<int32_t>(path_len));
  f.I32Const(VirtualFilesystem::kOpenRead);
  f.Call(api.open);
  f.LocalSet(fd);
  f.LocalGet(fd);
  f.I32Const(256);  // buffer
  f.I32Const(16);
  f.Call(api.read);
  f.Drop();
  f.LocalGet(fd);
  f.Call(api.close);
  f.Drop();
  f.I32Const(256);
  f.Load(Op::kI32Load8U);
  f.End();

  FunctionSpec spec;
  spec.name = "reader";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 0xAB);
}

TEST_F(FaasletTest, SocketsReachNetworkEndpoints) {
  network_.RegisterEndpoint("datastore", [](const Bytes& request) {
    Bytes response = request;
    for (auto& byte : response) {
      byte ^= 0xFF;
    }
    return response;
  });

  FunctionSpec spec;
  spec.name = "netfn";
  spec.native = [](InvocationContext&) { return 0; };
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  Faaslet& f = *faaslet.value();

  const int fd = f.SocketOpen();
  ASSERT_TRUE(f.SocketConnect(fd, "datastore").ok());
  const Bytes request{0x0F, 0xF0};
  ASSERT_TRUE(f.SocketSend(fd, request.data(), request.size()).ok());
  uint8_t response[2];
  auto n = f.SocketRecv(fd, response, 2);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 2u);
  EXPECT_EQ(response[0], 0xF0);
  EXPECT_EQ(response[1], 0x0F);
  ASSERT_TRUE(f.SocketClose(fd).ok());
  EXPECT_FALSE(f.SocketSend(fd, request.data(), 1).ok());
}

TEST_F(FaasletTest, DynamicLoading) {
  // A library module exporting double(x) = x * 2.
  wasm::ModuleBuilder lib;
  auto& dbl = lib.AddFunction("double", {ValType::kI32}, {ValType::kI32});
  dbl.LocalGet(0);
  dbl.I32Const(2);
  dbl.Emit(Op::kI32Mul);
  dbl.End();
  files_.Put("/lib/libdouble.wasm", lib.Build());

  FunctionSpec spec;
  spec.name = "loader";
  spec.native = [](InvocationContext&) { return 0; };
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  Faaslet& f = *faaslet.value();

  auto handle = f.DlOpen("/lib/libdouble.wasm");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto symbol = f.DlSym(handle.value(), "double");
  ASSERT_TRUE(symbol.ok());
  EXPECT_EQ(f.DynCall(symbol.value(), 21).value(), 42);
  EXPECT_EQ(f.DlSym(handle.value(), "nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(f.DlClose(handle.value()).ok());
  EXPECT_FALSE(f.DynCall(symbol.value(), 1).ok());
}

TEST_F(FaasletTest, GetTimeAndRandomFromGuest) {
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  // getrandom(64, 8); return first byte ^ (gettime() != 0 is not asserted)
  f.I32Const(64);
  f.I32Const(8);
  f.Call(api.getrandom);
  f.Drop();
  f.Call(api.gettime);
  f.Drop();
  f.I32Const(64);
  f.Load(Op::kI32Load8U);
  f.End();

  FunctionSpec spec;
  spec.name = "entropy";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  auto out = faaslet.value()->Execute({});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

TEST_F(FaasletTest, SbrkGrowsWithinLimit) {
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 8);  // module allows more than the function's limit below
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  f.I32Const(100000);  // ~2 pages
  f.Call(api.sbrk);
  f.End();

  FunctionSpec spec;
  spec.name = "grower";
  spec.module = Compile(b);
  spec.max_memory_pages = 5;
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  EXPECT_EQ(faaslet.value()->Execute({}).value(), 65536);  // old end
  EXPECT_EQ(faaslet.value()->memory().size_pages(), 3u);

  // Growing past the function limit traps.
  auto again = faaslet.value()->Execute({});
  ASSERT_TRUE(again.ok());
  auto third = faaslet.value()->Execute({});
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(wasm::IsTrap(third.status()));
}

TEST_F(FaasletTest, FootprintIsHundredsOfKilobytes) {
  wasm::ModuleBuilder b;
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  f.I32Const(0);
  f.End();
  FunctionSpec spec;
  spec.name = "noop";
  spec.module = Compile(b);
  auto faaslet = Faaslet::Create(spec, Env());
  ASSERT_TRUE(faaslet.ok());
  // Table 3 target regime: well under a megabyte.
  EXPECT_LT(faaslet.value()->FootprintBytes(), 512u * 1024);
  EXPECT_GT(faaslet.value()->FootprintBytes(), 32u * 1024);
}

}  // namespace
}  // namespace faasm
