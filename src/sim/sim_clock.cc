#include "sim/sim_clock.h"

#include <algorithm>
#include <cassert>

namespace faasm {

TimeNs SimClock::Now() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return now_;
}

void SimClock::RegisterThread() {
  std::lock_guard<std::mutex> guard(mutex_);
  ++runnable_;
}

void SimClock::UnregisterThread() {
  std::lock_guard<std::mutex> guard(mutex_);
  --runnable_;
  AdvanceIfIdleLocked();
}

void SimClock::SleepFor(TimeNs duration_ns) {
  if (duration_ns <= 0) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  SleepUntilLockedImpl(lock, now_ + duration_ns);
}

void SimClock::SleepUntil(TimeNs deadline_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  SleepUntilLockedImpl(lock, deadline_ns);
}

void SimClock::SleepUntilLockedImpl(std::unique_lock<std::mutex>& lock, TimeNs deadline_ns) {
  if (deadline_ns <= now_) {
    return;
  }
  Waiter waiter;
  waiter.deadline = deadline_ns;
  waiters_.push_back(&waiter);
  --runnable_;
  AdvanceIfIdleLocked();
  waiter.cv.wait(lock, [&] { return waiter.ready; });
}

void SimClock::AdvanceIfIdleLocked() {
  while (runnable_ == 0 && !waiters_.empty()) {
    TimeNs min_deadline = INT64_MAX;
    for (Waiter* w : waiters_) {
      min_deadline = std::min(min_deadline, w->deadline);
    }
    if (min_deadline == INT64_MAX) {
      return;  // all threads blocked outside the clock; nothing to advance
    }
    now_ = std::max(now_, min_deadline);
    // Wake every waiter whose deadline has arrived.
    std::vector<Waiter*> remaining;
    remaining.reserve(waiters_.size());
    for (Waiter* w : waiters_) {
      if (w->deadline <= now_) {
        w->ready = true;
        ++runnable_;
        w->cv.notify_one();
      } else {
        remaining.push_back(w);
      }
    }
    waiters_.swap(remaining);
    return;  // woke at least one thread
  }
}

bool SimClock::WaitFor(const std::function<bool()>& pred, TimeNs quantum_ns, TimeNs deadline_ns) {
  while (true) {
    if (pred()) {
      return true;
    }
    if (Now() >= deadline_ns) {
      return pred();
    }
    SleepFor(quantum_ns);
  }
}

SimExecutor::~SimExecutor() { JoinAll(); }

void SimExecutor::Spawn(std::function<void()> fn) {
  std::lock_guard<std::mutex> guard(threads_mutex_);
  // Register on the spawner's side so the clock cannot advance past the new
  // activity's start in the window before the thread begins running.
  clock_.RegisterThread();
  threads_.emplace_back([this, fn = std::move(fn)] {
    fn();
    clock_.UnregisterThread();
  });
}

void SimExecutor::JoinAll() {
  // Joining must not hold the mutex: running activities may Spawn() children.
  // Loop until no new threads appear.
  while (true) {
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> guard(threads_mutex_);
      if (threads_.empty()) {
        return;
      }
      to_join.swap(threads_);
    }
    for (auto& thread : to_join) {
      if (thread.joinable()) {
        thread.join();
      }
    }
  }
}

}  // namespace faasm
