// Validator rejection tests: the trusted code-generation phase must refuse
// ill-typed or malformed bodies before any execution (§3.4).
#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/compiled.h"

namespace faasm::wasm {
namespace {

Result<std::shared_ptr<const CompiledModule>> CompileBuilder(ModuleBuilder& b) {
  return CompileModule(b.BuildModule());
}

TEST(ValidationTest, AcceptsWellTypedFunction) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.I32Const(1);
  f.Emit(Op::kI32Add);
  f.End();
  EXPECT_TRUE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsStackUnderflow) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.Emit(Op::kI32Add);  // nothing on the stack
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsTypeMismatch) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.I32Const(1);
  f.F32Const(2.0f);
  f.Emit(Op::kI32Add);  // i32.add on (i32, f32)
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsMissingResult) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.End();  // returns nothing
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsExtraValuesAtEnd) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {});
  f.I32Const(1);
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsBadLocalIndex) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {ValType::kI32}, {});
  f.LocalGet(3);
  f.Drop();
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsBadBranchDepth) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {});
  f.Block();
  f.Br(5);
  f.End();
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsSetOfImmutableGlobal) {
  ModuleBuilder b;
  uint32_t g = b.AddGlobal(ValType::kI32, false, MakeI32(1));
  auto& f = b.AddFunction("f", {}, {});
  f.I32Const(2);
  f.GlobalSet(g);
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, AcceptsSetOfMutableGlobal) {
  ModuleBuilder b;
  uint32_t g = b.AddGlobal(ValType::kI32, true, MakeI32(1));
  auto& f = b.AddFunction("f", {}, {});
  f.I32Const(2);
  f.GlobalSet(g);
  f.End();
  EXPECT_TRUE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsMemoryOpsWithoutMemory) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.I32Const(0);
  f.Load(Op::kI32Load);
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsIfWithResultButNoElse) {
  ModuleBuilder b;
  b.AddMemory(1, 1);
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.I32Const(1);
  f.If(BlockType::Of(ValType::kI32));
  f.I32Const(2);
  f.End();
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, AcceptsIfElseWithResult) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.If(BlockType::Of(ValType::kI32));
  f.I32Const(10);
  f.Else();
  f.I32Const(20);
  f.End();
  f.End();
  EXPECT_TRUE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsCallArgMismatch) {
  ModuleBuilder b;
  auto& callee = b.AddFunction("", {ValType::kI64}, {});
  callee.End();
  auto& f = b.AddFunction("f", {}, {});
  f.I32Const(1);  // i32 where i64 expected
  f.Call(callee.index());
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsUnknownCallTarget) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {});
  f.Call(42);
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsSelectWithMixedTypes) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {});
  f.I32Const(1);
  f.F64Const(2.0);
  f.I32Const(0);
  f.Select();
  f.Drop();
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, AcceptsCodeAfterUnconditionalBranch) {
  // Unreachable code is validated polymorphically (spec algorithm).
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.Block(BlockType::Of(ValType::kI32));
  f.I32Const(1);
  f.Br(0);
  f.Emit(Op::kI32Add);  // unreachable: operands come from the polymorphic stack
  f.End();
  f.End();
  EXPECT_TRUE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsBrTableArityMismatch) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  f.Block(BlockType::Of(ValType::kI32));  // label 0: arity 1
  f.Block();                              // label 0 now; outer is 1: arity 0
  f.I32Const(9);
  f.LocalGet(0);
  f.BrTable({0, 1}, 0);  // mixed arities
  f.End();
  f.I32Const(3);
  f.End();
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

TEST(ValidationTest, RejectsTruncatedBody) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {});
  f.Block();  // builder auto-closes frames, so craft the module manually
  Module m = b.BuildModule();
  // Strip the auto-appended `end`s to simulate a truncated body.
  m.bodies[0].code.pop_back();
  m.bodies[0].code.pop_back();
  EXPECT_FALSE(CompileModule(std::move(m)).ok());
}

TEST(ValidationTest, RejectsLoopResultMismatch) {
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {}, {ValType::kI32});
  f.Loop(BlockType::Of(ValType::kI32));
  f.F32Const(1.5f);  // loop declared to yield i32
  f.End();
  f.End();
  EXPECT_FALSE(CompileBuilder(b).ok());
}

}  // namespace
}  // namespace faasm::wasm
