// Instance: an executing instantiation of a compiled module — globals, table,
// linear memory and a value/call stack. One Faaslet owns one Instance; many
// instances share one immutable CompiledModule.
//
// Execution is a pre-decoded interpreter with two orthogonal fast-path axes,
// both selectable per instance (InstanceOptions) for ablation:
//
//   Bounds tier (GuestBounds)
//     kChecked    every load/store runs LinearMemory::InBounds inline.
//     kGuardPage  no inline checks. LinearMemory reserves the whole
//                 u32-address + u32-offset range PROT_NONE; a wild access
//                 faults and a scoped SIGSEGV handler (wasm/guard_trap.h)
//                 converts the fault into TrapKind::kMemoryOutOfBounds.
//                 Downgraded to kChecked under sanitizers.
//
//   Dispatch tier (GuestDispatch)
//     kSwitch     classic switch dispatch loop.
//     kThreaded   computed-goto threaded dispatch (GNU extension); each
//                 handler ends in its own indirect branch. Downgraded to
//                 kSwitch when the compiler lacks the extension.
//
// Either way the wasm security model holds: out-of-bounds accesses trap,
// control flow can only follow validated edges, and indirect calls check
// signatures. An optional fuel limit bounds execution for tests and fair
// scheduling; fuel and instructions_retired are charged per straight-line
// segment (exact, and identical across every tier combination).
#ifndef FAASM_WASM_INSTANCE_H_
#define FAASM_WASM_INSTANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mem/linear_memory.h"
#include "wasm/compiled.h"

// Computed-goto dispatch needs the GNU labels-as-values extension. Define
// FAASM_NO_COMPUTED_GOTO to force the portable switch loop everywhere.
#if !defined(FAASM_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define FAASM_INTERP_COMPUTED_GOTO 1
#else
#define FAASM_INTERP_COMPUTED_GOTO 0
#endif

namespace faasm::wasm {

class Instance;

// A host function made available to the guest as a function import. `args`
// holds `n_args` values in declaration order; results (0 or 1) are written to
// `results`. A non-OK return becomes a trap in the guest.
using HostFn = std::function<Status(Instance&, const Value* args, size_t n_args, Value* results)>;

// Resolves module/name import pairs to host functions at instantiation time.
class ImportResolver {
 public:
  virtual ~ImportResolver() = default;
  virtual Result<HostFn> Resolve(const Import& import, const FuncType& type) = 0;
};

// Convenience resolver backed by a map of "module.name" -> HostFn.
class MapImportResolver : public ImportResolver {
 public:
  void Register(const std::string& module, const std::string& name, HostFn fn);
  Result<HostFn> Resolve(const Import& import, const FuncType& type) override;

 private:
  std::vector<std::tuple<std::string, std::string, HostFn>> entries_;
};

// How guest memory accesses are bounds-enforced (see file comment).
enum class GuestBounds {
  kChecked,
  kGuardPage,
};

// How the interpreter dispatches opcodes (see file comment).
enum class GuestDispatch {
  kSwitch,
  kThreaded,
};

struct InstanceOptions {
  // Maximum call-frame depth before a stack-exhaustion trap.
  uint32_t max_call_depth = 1024;
  // Maximum operand stack entries (8 bytes each).
  uint32_t max_stack_values = 1u << 20;
  // Default memory max (wasm pages) when the module declares none.
  uint32_t default_max_pages = 1u << 12;  // 256 MiB
  // Requested execution tiers. The effective tiers may be downgraded (see
  // Instance::effective_bounds / effective_dispatch).
  GuestBounds bounds = GuestBounds::kGuardPage;
  GuestDispatch dispatch = GuestDispatch::kThreaded;
};

class Instance {
 public:
  // `external_memory` lets the embedder (the Faaslet) own the linear memory;
  // when null the instance creates and owns one from the module's limits.
  static Result<std::unique_ptr<Instance>> Create(
      std::shared_ptr<const CompiledModule> compiled, ImportResolver* resolver,
      LinearMemory* external_memory = nullptr, const InstanceOptions& options = {});

  // Invokes an exported function.
  Result<std::vector<Value>> CallExport(const std::string& name, std::vector<Value> args);

  // Invokes any function by index (imports included).
  Result<std::vector<Value>> CallFunction(uint32_t func_index, std::vector<Value> args);

  LinearMemory& memory() { return *memory_; }
  const CompiledModule& compiled() const { return *compiled_; }

  // --- Globals (snapshot support) -------------------------------------------
  const std::vector<Value>& globals() const { return globals_; }
  Status SetGlobals(std::vector<Value> globals);

  // --- Execution accounting --------------------------------------------------
  // 0 disables the limit. The budget applies per CallExport/CallFunction.
  void set_fuel_limit(uint64_t fuel) { fuel_limit_ = fuel; }
  // Exact wire-instruction count, updated when the outermost call returns
  // (host functions observing it mid-call see the value at entry).
  uint64_t instructions_retired() const { return instructions_retired_; }

  // The tiers actually in effect after build/sanitizer downgrades.
  GuestBounds effective_bounds() const { return effective_bounds_; }
  GuestDispatch effective_dispatch() const { return effective_dispatch_; }

 private:
  struct Frame {
    const CompiledFunction* fn;
    uint32_t pc;
    uint32_t locals_base;   // stack index of param 0
    uint32_t operand_base;  // stack index of the first operand slot
  };

  // RAII accounting for one Run(): zeroes the per-call segment counters on
  // entry and folds them (plus any in-flight segment at an abrupt trap exit,
  // including a guard-page longjmp) into instructions_retired_ on exit.
  class CallScope;

  Instance(std::shared_ptr<const CompiledModule> compiled, const InstanceOptions& options)
      : compiled_(std::move(compiled)), options_(options) {}

  Status Instantiate(ImportResolver* resolver, LinearMemory* external_memory);

  // Runs the interpreter until the entry frame returns. Routes to the
  // effective bounds/dispatch tier.
  Status Run();

  // Guard-page tier: arms the SIGSEGV recovery window, sigsetjmps, and runs
  // the unchecked loop. Lives in its own frame so the setjmp does not
  // constrain the dispatch loop's locals.
  Status RunWithGuard();

  // Picks switch vs threaded dispatch for one bounds tier.
  template <bool kChecked>
  Status RunLoop();

  template <bool kChecked>
  Status RunSwitch();
#if FAASM_INTERP_COMPUTED_GOTO
  template <bool kChecked>
  Status RunThreaded();
#endif

  Status CallHostFunction(uint32_t func_index);

  // Pushes a wasm call frame; args must already be on the stack.
  Status PushFrame(uint32_t func_index);

  bool EnsureStack(size_t needed_slots);

  std::shared_ptr<const CompiledModule> compiled_;
  InstanceOptions options_;

  std::unique_ptr<LinearMemory> owned_memory_;
  LinearMemory* memory_ = nullptr;

  std::vector<Value> globals_;
  std::vector<uint32_t> table_;  // function indices; UINT32_MAX = null
  std::vector<HostFn> host_functions_;

  std::vector<Value> stack_;
  size_t sp_ = 0;
  std::vector<Frame> frames_;

  uint64_t fuel_limit_ = 0;
  uint64_t instructions_retired_ = 0;

  GuestBounds effective_bounds_ = GuestBounds::kChecked;
  GuestDispatch effective_dispatch_ = GuestDispatch::kSwitch;

  // Per-call segment accounting (members, not locals, so a guard-page
  // longjmp cannot clobber them): wire instructions retired by completed
  // segments of the current Run, and the pc where the running straight-line
  // segment of the top frame began.
  uint64_t retired_in_call_ = 0;
  uint32_t block_start_pc_ = 0;
};

}  // namespace faasm::wasm

#endif  // FAASM_WASM_INSTANCE_H_
