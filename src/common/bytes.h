// Byte-array helpers. The host interface deliberately passes all function
// inputs, outputs and state as raw byte arrays (§3.2 "Byte arrays"), so a
// small, allocation-conscious serialisation layer is used across the system.
#ifndef FAASM_COMMON_BYTES_H_
#define FAASM_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace faasm {

using Bytes = std::vector<uint8_t>;

inline Bytes BytesFromString(const std::string& s) { return Bytes(s.begin(), s.end()); }
inline std::string StringFromBytes(const Bytes& b) { return std::string(b.begin(), b.end()); }

// Append a trivially-copyable value in little-endian (host) order.
// resize+memcpy rather than insert(range): GCC 12's -Wstringop-overflow
// misjudges the scalar-range insert when it inlines the vector growth path
// and flags a phantom overflow at many call sites; the explicit form keeps
// the codegen identical without tripping it.
template <typename T>
void AppendScalar(Bytes& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

// Sequential writer over a growable byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    AppendScalar(out_, value);
  }

  void PutString(const std::string& s) {
    Put<uint32_t>(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  void PutBytes(const Bytes& b) {
    Put<uint32_t>(static_cast<uint32_t>(b.size()));
    PutRaw(b.data(), b.size());
  }

  // Same resize+memcpy shape as AppendScalar, for the same GCC 12
  // -Wstringop-overflow reason.
  void PutRaw(const void* data, size_t len) {
    if (len == 0) {
      return;
    }
    const size_t offset = out_.size();
    out_.resize(offset + len);
    std::memcpy(out_.data() + offset, data, len);
  }

 private:
  Bytes& out_;
};

// Sequential bounds-checked reader over a byte span.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ >= size_; }

  template <typename T>
  Result<T> Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) {
      return OutOfRange("ByteReader: truncated scalar");
    }
    T value;
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  Result<std::string> GetString() {
    auto len = Get<uint32_t>();
    if (!len.ok()) {
      return len.status();
    }
    if (remaining() < len.value()) {
      return OutOfRange("ByteReader: truncated string");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len.value());
    pos_ += len.value();
    return s;
  }

  Result<Bytes> GetBytes() {
    auto len = Get<uint32_t>();
    if (!len.ok()) {
      return len.status();
    }
    if (remaining() < len.value()) {
      return OutOfRange("ByteReader: truncated bytes");
    }
    Bytes b(data_ + pos_, data_ + pos_ + len.value());
    pos_ += len.value();
    return b;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// FNV-1a, used for content-addressing uploaded modules and test checksums.
uint64_t HashBytes(const uint8_t* data, size_t size);
inline uint64_t HashBytes(const Bytes& b) { return HashBytes(b.data(), b.size()); }

}  // namespace faasm

#endif  // FAASM_COMMON_BYTES_H_
