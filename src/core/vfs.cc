#include "core/vfs.h"

#include <algorithm>
#include <cstring>

namespace faasm {

// --- GlobalFileStore -----------------------------------------------------------

void GlobalFileStore::Put(const std::string& path, Bytes contents) {
  std::lock_guard<std::mutex> guard(mutex_);
  files_[path] = std::move(contents);
}

Result<Bytes> GlobalFileStore::Get(const std::string& path) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound("no such file: " + path);
  }
  return it->second;
}

bool GlobalFileStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return files_.count(path) > 0;
}

size_t GlobalFileStore::file_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return files_.size();
}

// --- VirtualFilesystem -----------------------------------------------------------

Result<int> VirtualFilesystem::Open(const std::string& path, int flags) {
  OpenFile file;
  file.path = path;
  file.writable = (flags & kOpenWrite) != 0;

  auto overlay_it = overlay_.find(path);
  if (file.writable) {
    if (overlay_it == overlay_.end()) {
      if ((flags & kOpenCreate) == 0) {
        return NotFound("open for write without create: " + path);
      }
      overlay_[path] = std::make_shared<Bytes>();
    }
    file.read_data = overlay_[path];
  } else {
    if (overlay_it != overlay_.end()) {
      file.read_data = overlay_it->second;  // local overlay wins
    } else {
      auto global = global_->Get(path);
      if (!global.ok()) {
        return global.status();
      }
      file.read_data = std::make_shared<Bytes>(std::move(global).value());
    }
  }

  const int fd = next_fd_++;
  fds_[fd] = std::move(file);
  return fd;
}

Status VirtualFilesystem::Close(int fd) {
  if (fds_.erase(fd) == 0) {
    return InvalidArgument("close of unknown fd");
  }
  return OkStatus();
}

Result<int> VirtualFilesystem::Dup(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument("dup of unknown fd");
  }
  const int new_fd = next_fd_++;
  fds_[new_fd] = it->second;
  return new_fd;
}

Result<size_t> VirtualFilesystem::Read(int fd, uint8_t* dst, size_t len) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument("read of unknown fd");
  }
  OpenFile& file = it->second;
  const Bytes& data = *file.read_data;
  if (file.cursor >= data.size()) {
    return size_t{0};  // EOF
  }
  const size_t n = std::min(len, data.size() - file.cursor);
  std::memcpy(dst, data.data() + file.cursor, n);
  file.cursor += n;
  return n;
}

Result<size_t> VirtualFilesystem::Write(int fd, const uint8_t* src, size_t len) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument("write of unknown fd");
  }
  OpenFile& file = it->second;
  if (!file.writable) {
    return PermissionDenied("fd is read-only: " + file.path);
  }
  Bytes& data = *file.read_data;
  if (data.size() < file.cursor + len) {
    data.resize(file.cursor + len);
  }
  std::memcpy(data.data() + file.cursor, src, len);
  file.cursor += len;
  return len;
}

Result<size_t> VirtualFilesystem::Seek(int fd, size_t position) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return InvalidArgument("seek of unknown fd");
  }
  it->second.cursor = position;
  return position;
}

Result<VirtualFilesystem::Stat> VirtualFilesystem::StatPath(const std::string& path) const {
  auto overlay_it = overlay_.find(path);
  if (overlay_it != overlay_.end()) {
    return Stat{overlay_it->second->size(), true};
  }
  auto global = global_->Get(path);
  if (!global.ok()) {
    return global.status();
  }
  return Stat{global.value().size(), false};
}

void VirtualFilesystem::Reset() {
  overlay_.clear();
  fds_.clear();
  next_fd_ = 3;
}

size_t VirtualFilesystem::open_fd_count() const { return fds_.size(); }

}  // namespace faasm
