// FailureDetector: heartbeat-based crash detection over the simulated
// network, so the cluster notices dead hosts ON ITS OWN instead of being
// told by the KillHost oracle.
//
// Every FaasmInstance publishes a periodic heartbeat (instance.cc: a
// dedicated activity Sends one small message per heartbeat_interval_ns to
// the detector's mailbox endpoint). The detector runs as its own activity
// on the shared virtual-time executor, so detection is deterministic: it
// drains its mailbox, tracks a per-host last-seen timestamp, and moves each
// host through a three-state machine:
//
//   alive ──(no heartbeat for suspicion_timeout_ns)──▶ suspect
//   suspect ──(direct probe answers)──▶ alive          (false positive: a
//                                                       slow host, cleared)
//   suspect ──(probe fails kUnavailable)──▶ dead       (confirmed: endpoint
//                                                       gone = crashed)
//
// SUSPICION ALONE NEVER KILLS. Before confirming a death the detector
// corroborates with a direct probe RPC at the host's own endpoint: a killed
// host's endpoints unregistered atomically with the crash, so the probe
// fails kUnavailable; a merely slow host (heartbeats delayed past the
// timeout) still answers, clears its suspicion, and is never failed over —
// which is what makes false-positive promotion (two masters for one key)
// impossible by construction.
//
// CLIENT EVIDENCE ACCELERATES. KvsClient reports kUnavailable bounces as
// suspicion hints (ReportSuspicion) instead of only silently retrying: a
// hinted host is probed on the next sweep without waiting for the heartbeat
// timeout, so under live traffic detection latency approaches one sweep
// quantum instead of the full suspicion window.
//
// On confirmation the detector invokes its DeathHandler exactly once per
// host — wired by FaasmCluster to HandleConfirmedDeath, the shared recovery
// entry (fence → quiesce → Failover → Reconcile) that the KillHost oracle
// also drives. Dead is terminal: a zombie's late heartbeat cannot resurrect
// a host that has already been failed over.
#ifndef FAASM_RUNTIME_FAILURE_DETECTOR_H_
#define FAASM_RUNTIME_FAILURE_DETECTOR_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/network.h"

namespace faasm {

struct FailureDetectorConfig {
  // Mailbox endpoint heartbeats are Sent to (and the probe's source name).
  std::string endpoint = "fd";
  // Expected heartbeat period (the sweep cadence derives from it).
  TimeNs heartbeat_interval_ns = 5 * kMillisecond;
  // Silence threshold: alive -> suspect once now - last_seen exceeds this.
  TimeNs suspicion_timeout_ns = 20 * kMillisecond;
  // Sweep period of the detector activity; 0 = heartbeat_interval / 2 (so
  // confirmation lands within suspicion_timeout + one heartbeat interval of
  // the crash, the latency bound the bench gates).
  TimeNs sweep_interval_ns = 0;
};

enum class HostHealth { kAlive, kSuspect, kDead };

// One confirmed death (detection-latency accounting: benches subtract their
// recorded kill time from confirmed_at_ns).
struct DeathRecord {
  std::string host;
  TimeNs confirmed_at_ns = 0;
  // True when a client suspicion hint (not the heartbeat timeout) triggered
  // the confirming probe.
  bool hinted = false;
};

// Heartbeat wire format (mailbox payload): "hb <host>". Kept trivially
// parseable — the payload's only job is to cost honest bytes on the wire.
Bytes EncodeHeartbeat(const std::string& host);
// Returns the host name, or "" for a malformed message.
std::string DecodeHeartbeat(const Bytes& message);

class FailureDetector {
 public:
  // Invoked from the detector activity, exactly once per confirmed death,
  // BEFORE the death becomes visible in deaths()/death_count() — so a
  // caller that waited out death_count() observes completed recovery.
  using DeathHandler = std::function<void(const std::string& host)>;

  FailureDetector(InProcNetwork* network, Clock* clock, FailureDetectorConfig config,
                  DeathHandler on_death);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  // Membership: Track() arms monitoring (last-seen initialised to now, so a
  // freshly added host gets a full suspicion window before its first
  // heartbeat is due). Forget() disarms it — graceful removal must call it
  // BEFORE the host stops heartbeating, or retirement reads as a crash.
  void Track(const std::string& host);
  void Forget(const std::string& host);

  // Client-side evidence: some client's op at `endpoint` bounced with
  // kUnavailable ("kvs:<host>" / "rep:<host>" / bare host names all
  // accepted). Thread-safe; schedules a corroborating probe on the next
  // sweep instead of waiting for the heartbeat timeout.
  void ReportSuspicion(const std::string& endpoint);

  // The detector activity body: sweep loop until Stop(). Run on a
  // clock-registered thread (SimExecutor::Spawn).
  void Run();
  void Stop() { stop_.store(true); }

  // One sweep, exposed for deterministic unit tests (Run is just
  // sweep-sleep-repeat).
  void Sweep();

  HostHealth HealthOf(const std::string& host) const;
  std::vector<DeathRecord> deaths() const;
  size_t death_count() const { return death_count_.load(); }
  uint64_t heartbeats_seen() const { return heartbeats_seen_.load(); }
  uint64_t suspicions() const { return suspicions_.load(); }
  // Suspicions cleared by a successful probe: the flap counter — every one
  // of these is a failover a timeout-only detector would have run falsely.
  uint64_t false_suspicions() const { return false_suspicions_.load(); }
  uint64_t hints() const { return hints_.load(); }

  const FailureDetectorConfig& config() const { return config_; }

 private:
  struct HostState {
    TimeNs last_seen = 0;
    HostHealth health = HostHealth::kAlive;
    bool hinted = false;  // probe on next sweep regardless of timeout
  };

  void DrainMailbox();
  // Direct liveness check: Call the host's own endpoint. Alive hosts answer
  // (handlers run even when the dispatcher is slow); crashed hosts'
  // endpoints are unregistered, so the call fails kUnavailable.
  bool ProbeAlive(const std::string& host);
  void ConfirmDeath(const std::string& host, bool hinted);

  InProcNetwork* network_;
  Clock* clock_;
  FailureDetectorConfig config_;
  DeathHandler on_death_;

  mutable std::mutex mutex_;
  std::map<std::string, HostState> hosts_;
  std::vector<DeathRecord> deaths_;

  std::atomic<bool> stop_{false};
  std::atomic<size_t> death_count_{0};
  std::atomic<uint64_t> heartbeats_seen_{0};
  std::atomic<uint64_t> suspicions_{0};
  std::atomic<uint64_t> false_suspicions_{0};
  std::atomic<uint64_t> hints_{0};
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_FAILURE_DETECTOR_H_
