// LocalTier: the per-host registry of state replicas (Fig. 4). All Faaslets
// on a host share one LocalTier, which is exactly what lets them share
// replicas in memory instead of holding private copies.
#ifndef FAASM_STATE_LOCAL_TIER_H_
#define FAASM_STATE_LOCAL_TIER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "state/state_key_value.h"

namespace faasm {

class LocalTier {
 public:
  LocalTier(KvsClient* kvs, Clock* clock) : kvs_(kvs), clock_(clock) {}
  // Settle in-flight batched pushes before the replicas (whose bookkeeping
  // their acks touch) are destroyed. The client must outlive the tier.
  ~LocalTier() { (void)kvs_->FlushBatch(); }

  // Returns (creating on demand) the replica handle for `key`.
  std::shared_ptr<StateKeyValue> Lookup(const std::string& key);

  // True if a replica for `key` exists on this host.
  bool Contains(const std::string& key) const;

  // True when `key`'s global-tier master shard is this host's own (push/pull
  // for it are in-process and move zero network bytes). Pure hash lookup —
  // safe to call on scheduling hot paths.
  bool MasterLocal(const std::string& key) const { return kvs_->MasterLocal(key); }

  // Total bytes held in this host's local tier (for footprint accounting).
  size_t resident_bytes() const;

  size_t key_count() const;

  // Flush barrier for the batched push protocol (state_key_value.h): blocks
  // until every state op this host enqueued is durable in the global tier.
  // Cheap no-op when nothing is pending; the runtime calls it at host-
  // interface sync points and at call completion.
  Status FlushBatched() { return kvs_->FlushBatch(); }

  // Read-side twin of the batched push: pulls every listed key's whole value
  // in at most one kGetBatch RPC per master endpoint (grouped and pipelined
  // like DispatchBatch) and installs each into its replica via InstallPulled,
  // so the keys' next Pull() is free. With read batching disabled on the
  // client this degrades to a per-key Pull(). Returns the first error (a
  // missing key is an error; prefetch what exists). Rides the client's full
  // read path: keys this host backs are served by the co-located replica
  // in-process (DispatchBatch's tier two) and never reach a wire group.
  Status Prefetch(const std::vector<std::string>& keys);

  // Drops every replica (host teardown in tests). Flushes first: a pending
  // batched push holds bookkeeping callbacks into the replicas.
  void Clear();

  KvsClient* kvs() { return kvs_; }
  Clock* clock() { return clock_; }

 private:
  KvsClient* kvs_;
  Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<StateKeyValue>> values_;
};

// RAII batching scope: while alive, every StateKeyValue::Push() on THIS
// ACTIVITY (scopes are thread-local — one Faaslet call's scope never demotes
// a concurrent call's scopeless Push from being its own barrier) defers into
// the host's ambient OpBatch instead of flushing itself; Close() (or
// destruction) is the flush barrier that groups everything enqueued into at
// most one RPC per master endpoint, pipelined across shards. Use around a
// multi-key update step:
//
//   StateBatch batch(ctx.state());
//   for (auto& counter : counters) counter.Push();   // accepted, not yet durable
//   Status pushed = batch.Close();                   // ≤ M round trips, all acked
//
// Close() returns the aggregate status of every op the barrier flushed (the
// per-op acks have all fired by then). Scopes nest; a scope left open by
// mistake is neutralised at call completion, when the runtime flushes the
// batch regardless.
class StateBatch {
 public:
  explicit StateBatch(LocalTier& tier) : kvs_(tier.kvs()) { kvs_->BeginBatchScope(); }
  ~StateBatch() {
    if (!closed_) {
      (void)Close();
    }
  }
  StateBatch(const StateBatch&) = delete;
  StateBatch& operator=(const StateBatch&) = delete;

  Status Close() {
    closed_ = true;
    kvs_->EndBatchScope();
    return kvs_->FlushBatch();
  }

 private:
  KvsClient* kvs_;
  bool closed_ = false;
};

}  // namespace faasm

#endif  // FAASM_STATE_LOCAL_TIER_H_
