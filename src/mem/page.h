// Page-size constants and arithmetic shared by the memory substrate.
#ifndef FAASM_MEM_PAGE_H_
#define FAASM_MEM_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace faasm {

// WebAssembly fixes its page size at 64 KiB.
constexpr size_t kWasmPageBytes = 64 * 1024;

// Host (x86-64 Linux) page size. Shared-region mappings must be aligned to
// this; we align them to whole wasm pages, which is a multiple.
constexpr size_t kHostPageBytes = 4096;

constexpr size_t RoundUpTo(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

constexpr size_t RoundDownTo(size_t value, size_t alignment) {
  return value / alignment * alignment;
}

constexpr bool IsAligned(size_t value, size_t alignment) { return value % alignment == 0; }

}  // namespace faasm

#endif  // FAASM_MEM_PAGE_H_
