// The batched push protocol (ISSUE 5 acceptance): a push of K keys mastered
// on M hosts must cost at most M batch RPCs — previously at least one RPC
// per key — with the master-local group free, per-op acks, and unchanged
// bytes landing in each key's master shard. Plus the scopeless "every push
// is its own barrier" semantics and the adjacent-run wire coalescing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>

#include "sim/sim_clock.h"
#include "state/local_tier.h"

namespace faasm {
namespace {

constexpr size_t kPage = StateKeyValue::kStatePageBytes;

// Sharded fixture: four host-colocated shards; this host ("host-0") serves
// its own shard in process and reaches the other three over the network.
class BatchPushTest : public ::testing::Test {
 protected:
  static constexpr int kHosts = 4;

  BatchPushTest() : network_(&clock_, NoLatency()) {
    for (int i = 0; i < kHosts; ++i) {
      map_.AddShard(ShardMap::EndpointForHost(HostName(i)));
    }
    for (int i = 1; i < kHosts; ++i) {
      servers_.push_back(std::make_unique<KvsServer>(
          &shards_[i], &network_, ShardMap::EndpointForHost(HostName(i)), &map_));
    }
    kvs_ = std::make_unique<KvsClient>(&network_, HostName(0), &map_, &shards_[0]);
    kvs_->EnableBatching(nullptr);  // groups inline; no pipelining needed here
    tier_ = std::make_unique<LocalTier>(kvs_.get(), &clock_);
  }

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  static std::string HostName(int i) { return "host-" + std::to_string(i); }

  KvStore& ShardMastering(const std::string& key) {
    const std::string master = map_.MasterFor(key);
    for (int i = 0; i < kHosts; ++i) {
      if (master == ShardMap::EndpointForHost(HostName(i))) {
        return shards_[i];
      }
    }
    ADD_FAILURE() << "no shard masters " << key;
    return shards_[0];
  }

  // Creates the replica for `key` and writes `fill` through the write API.
  std::shared_ptr<StateKeyValue> WriteValue(const std::string& key, uint8_t fill) {
    auto kv = tier_->Lookup(key);
    EXPECT_TRUE(kv->EnsureCapacity(kPage).ok());
    uint8_t* dst = kv->WritableData(0, kPage);
    EXPECT_NE(dst, nullptr);
    std::memset(dst, fill, kPage);
    return kv;
  }

  RealClock clock_;
  InProcNetwork network_;
  ShardMap map_;
  KvStore shards_[kHosts];
  std::vector<std::unique_ptr<KvsServer>> servers_;
  std::unique_ptr<KvsClient> kvs_;
  std::unique_ptr<LocalTier> tier_;
};

TEST_F(BatchPushTest, MultiKeyPushCostsAtMostOneRpcPerMasterHost) {
  constexpr int kKeys = 12;
  std::vector<std::shared_ptr<StateKeyValue>> replicas;
  int remote_keys = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    replicas.push_back(WriteValue(key, static_cast<uint8_t>(i + 1)));
    remote_keys += map_.MasterFor(key) == ShardMap::EndpointForHost(HostName(0)) ? 0 : 1;
  }
  ASSERT_GT(remote_keys, kHosts - 1) << "want more remote keys than remote hosts";

  network_.ResetStats();
  {
    StateBatch batch(*tier_);
    for (auto& replica : replicas) {
      ASSERT_TRUE(replica->Push().ok());  // accepted into the batch
    }
    // Nothing has crossed the network yet: the pushes are deferred.
    EXPECT_EQ(network_.total_bytes(), 0u);
    Status flushed = batch.Close();
    ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  }

  // THE acceptance bound: K keys mastered on M hosts cost at most M batch
  // RPCs — here at most M-1 = 3 messages leave this host (its own shard's
  // group runs in process) although `remote_keys` > 3 keys crossed shards.
  const uint64_t rpcs = network_.StatsFor(HostName(0)).tx_messages;
  EXPECT_LE(rpcs, static_cast<uint64_t>(kHosts - 1));
  EXPECT_GE(rpcs, 1u);

  // Every key's bytes landed on its master shard, exactly once.
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "key-" + std::to_string(i);
    auto value = ShardMastering(key).Get(key);
    ASSERT_TRUE(value.ok()) << key;
    EXPECT_EQ(value.value(), Bytes(kPage, static_cast<uint8_t>(i + 1))) << key;
  }
}

TEST_F(BatchPushTest, BatchedPushMovesFewerBytesThanUnbatched) {
  // Same workload, batch scope vs per-op pushes: the batch saves the
  // per-RPC framing (request op + key + response per op) while moving the
  // same payload, so its byte count must be strictly smaller.
  constexpr int kKeys = 8;
  auto run = [&](bool batched, const std::string& prefix) -> uint64_t {
    std::vector<std::shared_ptr<StateKeyValue>> replicas;
    for (int i = 0; i < kKeys; ++i) {
      replicas.push_back(WriteValue(prefix + std::to_string(i), 0x42));
    }
    network_.ResetStats();
    if (batched) {
      StateBatch batch(*tier_);
      for (auto& replica : replicas) {
        EXPECT_TRUE(replica->Push().ok());
      }
      EXPECT_TRUE(batch.Close().ok());
    } else {
      for (auto& replica : replicas) {
        EXPECT_TRUE(replica->Push().ok());
      }
    }
    return network_.total_bytes();
  };
  // Key prefixes chosen so both runs route the same way per index.
  const uint64_t batched = run(true, "bytes-");
  const uint64_t unbatched = run(false, "bytes-x");
  EXPECT_LT(batched, unbatched) << "batched=" << batched << " unbatched=" << unbatched;
}

TEST_F(BatchPushTest, ScopelessPushIsItsOwnBarrier) {
  // With no StateBatch open, Push() keeps its unbatched contract: when it
  // returns Ok the bytes are durable in the global tier.
  auto kv = WriteValue("solo", 0x77);
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(ShardMastering("solo").Get("solo").value(), Bytes(kPage, 0x77));
  EXPECT_EQ(kvs_->pending_batch_ops(), 0u);
}

TEST_F(BatchPushTest, TwoPushesOfOneKeyInScopeShipAsOneCoalescedOp) {
  // Find a remote-mastered key so the wire carries the op.
  std::string key;
  for (int i = 0; i < 100000 && key.empty(); ++i) {
    std::string probe = "coalesce-" + std::to_string(i);
    if (map_.MasterFor(probe) != ShardMap::EndpointForHost(HostName(0))) {
      key = std::move(probe);
    }
  }
  ASSERT_FALSE(key.empty());

  auto kv = tier_->Lookup(key);
  ASSERT_TRUE(kv->EnsureCapacity(2 * kPage).ok());
  network_.ResetStats();
  {
    StateBatch batch(*tier_);
    // Two adjacent page runs, dirtied and pushed SEPARATELY: without the
    // enqueue-time coalescing they would travel as two sub-ops/ranges.
    std::memset(kv->WritableData(0, kPage), 0x0A, kPage);
    ASSERT_TRUE(kv->Push().ok());
    std::memset(kv->WritableData(kPage, kPage), 0x0B, kPage);
    ASSERT_TRUE(kv->Push().ok());
    EXPECT_EQ(kvs_->pending_batch_ops(), 1u);  // merged into one sub-op
    ASSERT_TRUE(batch.Close().ok());
  }
  EXPECT_EQ(network_.StatsFor(HostName(0)).tx_messages, 1u);

  auto value = ShardMastering(key).Get(key);
  ASSERT_TRUE(value.ok());
  ASSERT_EQ(value.value().size(), 2 * kPage);
  EXPECT_EQ(value.value()[0], 0x0A);
  EXPECT_EQ(value.value()[2 * kPage - 1], 0x0B);
}

TEST_F(BatchPushTest, SuccessfulBatchedPushClearsDirtyRuns) {
  auto kv = WriteValue("clear-check", 0x5C);
  ASSERT_TRUE(kv->Push().ok());
  network_.ResetStats();
  ASSERT_TRUE(kv->Push().ok());  // nothing dirty since: no bytes move
  EXPECT_EQ(network_.total_bytes(), 0u);
  EXPECT_EQ(kvs_->pending_batch_ops(), 0u);
}

TEST(BatchPushFailureTest, FailedBatchedPushSurfacesAndRemarksRuns) {
  // Centralised client (no shard map: a kWrongMaster bounce is NOT retried,
  // it surfaces immediately) with batching enabled, against a store whose
  // migration filter refuses the key: the batched push must report the
  // failure at its barrier AND re-mark the dirty runs, so the next push
  // delivers the data once the filter clears.
  RealClock clock;
  NetworkConfig no_latency;
  no_latency.charge_latency = false;
  InProcNetwork network(&clock, no_latency);
  KvStore store;
  KvsServer server(&store, &network);
  KvsClient kvs(&network, "host-0");
  kvs.EnableBatching(nullptr);
  LocalTier tier(&kvs, &clock);

  store.SetMigrationFilter([](const std::string& key) { return key == "blocked"; });
  auto kv = tier.Lookup("blocked");
  ASSERT_TRUE(kv->EnsureCapacity(kPage).ok());
  std::memset(kv->WritableData(0, kPage), 0x5D, kPage);

  // Scopeless push: its own barrier, so the bounce surfaces right here.
  EXPECT_EQ(kv->Push().code(), StatusCode::kWrongMaster);
  EXPECT_FALSE(store.Exists("blocked"));

  // The runs were re-marked: after the filter clears, a plain Push ships
  // them again and the full page lands.
  store.ClearMigrationFilter();
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(store.Get("blocked").value(), Bytes(kPage, 0x5D));
}

TEST(BatchScopeThreadingTest, ScopeOnOneActivityDoesNotDeferAnotherActivitysPush) {
  // Scopes are per activity: while call A holds a StateBatch open, a
  // concurrent call B's scopeless Push() must still be its own barrier —
  // durable in the global tier the moment it returns.
  SimExecutor executor;
  NetworkConfig no_latency;
  no_latency.charge_latency = false;
  InProcNetwork network(&executor.clock(), no_latency);
  KvStore store;
  KvsServer server(&store, &network);
  KvsClient kvs(&network, "host-0");
  kvs.EnableBatching([&](std::function<void()> fn) { executor.Spawn(std::move(fn)); });
  LocalTier tier(&kvs, &executor.clock());

  std::atomic<int> phase{0};
  executor.Spawn([&] {  // call A
    auto kv = tier.Lookup("a");
    ASSERT_TRUE(kv->EnsureCapacity(kPage).ok());
    std::memset(kv->WritableData(0, kPage), 0xA1, kPage);
    StateBatch batch(tier);
    ASSERT_TRUE(kv->Push().ok());  // deferred by A's own scope
    phase.store(1);
    while (phase.load() < 2) {
      executor.clock().SleepFor(50 * kMicrosecond);
    }
    ASSERT_TRUE(batch.Close().ok());
  });
  executor.Spawn([&] {  // call B
    while (phase.load() < 1) {
      executor.clock().SleepFor(50 * kMicrosecond);
    }
    auto kv = tier.Lookup("b");
    ASSERT_TRUE(kv->EnsureCapacity(kPage).ok());
    std::memset(kv->WritableData(0, kPage), 0xB2, kPage);
    ASSERT_TRUE(kv->Push().ok());
    // B never opened a scope: its push is already durable, despite A's
    // scope being open on the same host.
    EXPECT_EQ(store.Get("b").value(), Bytes(kPage, 0xB2));
    phase.store(2);
  });
  executor.JoinAll();
  EXPECT_EQ(store.Get("a").value(), Bytes(kPage, 0xA1));
}

TEST(BatchPipelineTest, GroupsToDifferentShardsOverlapRoundTrips) {
  // Three groups bound for three different shards must overlap their round
  // trips (one activity per group) instead of serialising: with a 100 µs
  // one-way base latency, the batch completes in ~one RTT plus the wait
  // quantum, where three sequential ops pay three RTTs.
  SimExecutor executor;
  InProcNetwork network(&executor.clock(), NetworkConfig{});  // latency ON

  ShardMap map;
  for (int i = 1; i <= 3; ++i) {
    map.AddShard(ShardMap::EndpointForHost("host-" + std::to_string(i)));
  }
  KvStore shards[3];
  std::vector<std::unique_ptr<KvsServer>> servers;
  for (int i = 1; i <= 3; ++i) {
    servers.push_back(std::make_unique<KvsServer>(
        &shards[i - 1], &network, ShardMap::EndpointForHost("host-" + std::to_string(i)),
        &map));
  }
  KvsClient client(&network, "host-0", &map, /*local_store=*/nullptr);
  client.EnableBatching([&](std::function<void()> fn) { executor.Spawn(std::move(fn)); });

  // One key mastered by each shard.
  std::vector<std::string> keys(3);
  for (int i = 0; i < 100000; ++i) {
    std::string probe = "pipe-" + std::to_string(i);
    for (int s = 0; s < 3; ++s) {
      if (keys[s].empty() &&
          map.MasterFor(probe) == ShardMap::EndpointForHost("host-" + std::to_string(s + 1))) {
        keys[s] = probe;
      }
    }
    if (!keys[0].empty() && !keys[1].empty() && !keys[2].empty()) {
      break;
    }
  }

  TimeNs batched_elapsed = 0;
  TimeNs sequential_elapsed = 0;
  executor.Spawn([&] {
    OpBatch batch;
    for (const std::string& key : keys) {
      batch.Set(key, Bytes(1024, 1));
    }
    const TimeNs start = executor.clock().Now();
    ASSERT_TRUE(client.ExecuteBatchNow(std::move(batch)).ok());
    batched_elapsed = executor.clock().Now() - start;

    const TimeNs sequential_start = executor.clock().Now();
    for (const std::string& key : keys) {
      ASSERT_TRUE(client.Set(key, Bytes(1024, 2)).ok());
    }
    sequential_elapsed = executor.clock().Now() - sequential_start;
  });
  executor.JoinAll();

  // Sequential: three full RTTs. Batched: the three RTTs overlap.
  EXPECT_LT(batched_elapsed, sequential_elapsed)
      << "batched=" << batched_elapsed << "ns sequential=" << sequential_elapsed << "ns";
  EXPECT_LT(batched_elapsed, 2 * sequential_elapsed / 3);
}

}  // namespace
}  // namespace faasm
