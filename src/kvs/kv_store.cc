#include "kvs/kv_store.h"

#include <algorithm>

namespace faasm {

namespace {
// Upper bound on a single value's extent. Offsets come straight off the wire
// in the range ops; without a bound an overflowing (or merely huge) offset
// would corrupt memory or force an absurd resize.
constexpr size_t kMaxValueBytes = size_t{1} << 34;  // 16 GiB

bool RangeIsSane(size_t offset, size_t len) {
  return offset <= kMaxValueBytes && len <= kMaxValueBytes - offset;
}
}  // namespace

Bytes KeyExport::Serialize() const {
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint8_t>(has_value ? 1 : 0);
  writer.PutBytes(value);
  writer.Put<int32_t>(lock_readers);
  writer.PutString(lock_writer);
  writer.Put<uint32_t>(static_cast<uint32_t>(set_members.size()));
  for (const std::string& member : set_members) {
    writer.PutString(member);
  }
  return out;
}

Result<KeyExport> KeyExport::Deserialize(const Bytes& bytes) {
  KeyExport record;
  ByteReader reader(bytes);
  FAASM_ASSIGN_OR_RETURN(uint8_t has_value, reader.Get<uint8_t>());
  record.has_value = has_value != 0;
  FAASM_ASSIGN_OR_RETURN(record.value, reader.GetBytes());
  FAASM_ASSIGN_OR_RETURN(record.lock_readers, reader.Get<int32_t>());
  FAASM_ASSIGN_OR_RETURN(record.lock_writer, reader.GetString());
  FAASM_ASSIGN_OR_RETURN(uint32_t member_count, reader.Get<uint32_t>());
  record.set_members.reserve(std::min<uint32_t>(member_count, 1024));
  for (uint32_t i = 0; i < member_count; ++i) {
    FAASM_ASSIGN_OR_RETURN(std::string member, reader.GetString());
    record.set_members.push_back(std::move(member));
  }
  return record;
}

Status KvStore::Set(const std::string& key, Bytes value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  shard.values[key] = std::move(value);
  return OkStatus();
}

Result<Bytes> KvStore::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  return it->second;
}

bool KvStore::Exists(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.values.count(key) > 0;
}

Result<size_t> KvStore::Size(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  return it->second.size();
}

Status KvStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  return shard.values.erase(key) > 0 ? OkStatus() : NotFound("kvs: no such key: " + key);
}

Result<Bytes> KvStore::GetRange(const std::string& key, size_t offset, size_t len) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  const Bytes& value = it->second;
  if (offset > value.size()) {
    return OutOfRange("kvs: range start past end of value");
  }
  const size_t end = std::min(value.size(), offset + len);
  return Bytes(value.begin() + offset, value.begin() + end);
}

Status KvStore::SetRange(const std::string& key, size_t offset, const Bytes& bytes) {
  if (!RangeIsSane(offset, bytes.size())) {
    return InvalidArgument("kvs: range write exceeds maximum value size");
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  Bytes& value = shard.values[key];
  if (value.size() < offset + bytes.size()) {
    value.resize(offset + bytes.size());
  }
  std::copy(bytes.begin(), bytes.end(), value.begin() + offset);
  return OkStatus();
}

Status KvStore::SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
  for (const ValueRange& range : ranges) {
    if (!RangeIsSane(range.offset, range.bytes.size())) {
      return InvalidArgument("kvs: range write exceeds maximum value size");
    }
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  Bytes& value = shard.values[key];
  size_t needed = value.size();
  for (const ValueRange& range : ranges) {
    needed = std::max(needed, static_cast<size_t>(range.offset) + range.bytes.size());
  }
  if (value.size() < needed) {
    value.resize(needed);
  }
  for (const ValueRange& range : ranges) {
    std::copy(range.bytes.begin(), range.bytes.end(), value.begin() + range.offset);
  }
  return OkStatus();
}

Result<size_t> KvStore::Append(const std::string& key, const Bytes& bytes) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  Bytes& value = shard.values[key];
  value.insert(value.end(), bytes.begin(), bytes.end());
  return value.size();
}

Result<bool> KvStore::TryLockRead(const std::string& key, const std::string& /*owner*/) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  LockState& lock = shard.locks[key];
  if (!lock.writer.empty()) {
    return false;
  }
  ++lock.readers;
  return true;
}

Result<bool> KvStore::TryLockWrite(const std::string& key, const std::string& owner) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  LockState& lock = shard.locks[key];
  if (!lock.writer.empty() || lock.readers > 0) {
    return false;
  }
  lock.writer = owner;
  return true;
}

Status KvStore::UnlockRead(const std::string& key, const std::string& /*owner*/) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  LockState& lock = shard.locks[key];
  if (lock.readers <= 0) {
    return FailedPrecondition("kvs: read-unlock without lock: " + key);
  }
  --lock.readers;
  return OkStatus();
}

Status KvStore::UnlockWrite(const std::string& key, const std::string& owner) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  LockState& lock = shard.locks[key];
  if (lock.writer != owner) {
    return FailedPrecondition("kvs: write-unlock by non-owner: " + key);
  }
  lock.writer.clear();
  return OkStatus();
}

Result<bool> KvStore::SetAdd(const std::string& key, const std::string& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  return shard.sets[key].insert(member).second;
}

Result<bool> KvStore::SetRemove(const std::string& key, const std::string& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  auto it = shard.sets.find(key);
  if (it == shard.sets.end()) {
    return false;
  }
  return it->second.erase(member) > 0;
}

std::vector<std::string> KvStore::SetMembers(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.sets.find(key);
  if (it == shard.sets.end()) {
    return {};
  }
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::string> KvStore::Keys() const {
  std::set<std::string> keys;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (const auto& [key, value] : shard.values) {
      keys.insert(key);
    }
    for (const auto& [key, lock] : shard.locks) {
      if (lock.readers > 0 || !lock.writer.empty()) {
        keys.insert(key);
      }
    }
    for (const auto& [key, members] : shard.sets) {
      if (!members.empty()) {
        keys.insert(key);
      }
    }
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

void KvStore::FreezeKey(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.frozen.insert(key);
}

void KvStore::UnfreezeKey(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.frozen.erase(key);
}

bool KvStore::IsFrozen(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.frozen.count(key) > 0;
}

void KvStore::SetMigrationFilter(std::function<bool(const std::string&)> filter) {
  KeyPredicate shared =
      filter ? std::make_shared<const std::function<bool(const std::string&)>>(std::move(filter))
             : nullptr;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.filter = shared;
  }
}

void KvStore::SetOwnershipGuard(std::function<bool(const std::string&)> owns) {
  KeyPredicate shared =
      owns ? std::make_shared<const std::function<bool(const std::string&)>>(std::move(owns))
           : nullptr;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.owns = shared;
  }
}

KeyExport KvStore::ExportKey(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  KeyExport record;
  if (auto it = shard.values.find(key); it != shard.values.end()) {
    record.has_value = true;
    record.value = it->second;
  }
  if (auto it = shard.locks.find(key); it != shard.locks.end()) {
    record.lock_readers = it->second.readers;
    record.lock_writer = it->second.writer;
  }
  if (auto it = shard.sets.find(key); it != shard.sets.end()) {
    record.set_members.assign(it->second.begin(), it->second.end());
  }
  return record;
}

void KvStore::InstallKey(const std::string& key, const KeyExport& record) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.frozen.erase(key);  // the key is moving (back) in
  if (record.has_value) {
    shard.values[key] = record.value;
  } else {
    shard.values.erase(key);
  }
  if (record.lock_readers > 0 || !record.lock_writer.empty()) {
    shard.locks[key] = LockState{record.lock_readers, record.lock_writer};
  } else {
    shard.locks.erase(key);
  }
  if (!record.set_members.empty()) {
    shard.sets[key] =
        std::set<std::string>(record.set_members.begin(), record.set_members.end());
  } else {
    shard.sets.erase(key);
  }
}

void KvStore::EraseKey(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.values.erase(key);
  shard.locks.erase(key);
  shard.sets.erase(key);
  // The ownership guard — not a per-key marker — keeps stragglers off the
  // moved key, and keeps working if mastership later returns here.
  shard.frozen.erase(key);
}

size_t KvStore::key_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    count += shard.values.size();
  }
  return count;
}

size_t KvStore::total_bytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (const auto& [key, value] : shard.values) {
      bytes += value.size();
    }
  }
  return bytes;
}

}  // namespace faasm
