#!/usr/bin/env bash
# Tier-1 verify recipe: configure, build, and run the full test suite.
# Used by both local development and CI so the recipe lives in one place.
#
# Usage:
#   scripts/check_build.sh                 # default RelWithDebInfo build
#   BUILD_TYPE=Debug scripts/check_build.sh
#   SANITIZE=ON scripts/check_build.sh     # ASan/UBSan build + tests
#   SANITIZE=TSAN scripts/check_build.sh   # ThreadSanitizer build + tests
#   CMAKE_ARGS="-DFAASM_WERROR=ON" scripts/check_build.sh
#
# Extra arguments pass straight through to ctest, for targeted reruns:
#   scripts/check_build.sh -R KvStoreTest            # one suite
#   scripts/check_build.sh -R Batch --repeat until-fail:5
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
SANITIZE="${SANITIZE:-OFF}"
BUILD_DIR="${BUILD_DIR:-build}"
ASAN_UBSAN=OFF
TSAN=OFF
if [[ "${SANITIZE}" == "ON" ]]; then
  ASAN_UBSAN=ON
  [[ "${BUILD_DIR}" == "build" ]] && BUILD_DIR=build-asan
elif [[ "${SANITIZE}" == "TSAN" ]]; then
  TSAN=ON
  [[ "${BUILD_DIR}" == "build" ]] && BUILD_DIR=build-tsan
  # Suppress the intentional hogwild-SGD races; keep caller-provided options.
  export TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp${TSAN_OPTIONS:+:${TSAN_OPTIONS}}"
fi

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE="${BUILD_TYPE}" \
  -DFAASM_SANITIZE="${ASAN_UBSAN}" \
  -DFAASM_TSAN="${TSAN}" \
  ${CMAKE_ARGS:-}
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
