// Shared runner for the replica-read ablation (fig9_micro --replica-reads):
// does serving reads from a co-located backup copy actually cut cross-host
// read RPCs, and does it ever serve a stale byte?
//
// Workload: K versioned values on an R=2 ring. Every round, each key takes
// one acked write through its MASTER host's client (a fresh version stamp
// over a fixed fill pattern), then one read from a holder host chosen by
// alternating master/backup — modeling the scheduler's widened read-mostly
// affinity, which places read calls on ANY holder of the key's shard, not
// just the master. Both columns replicate at R=2 (same durability); they
// differ ONLY in whether the client's replica tier serves (config's
// replica_reads). The read decodes the version stamp: a version behind the
// last acked write is a STALENESS VIOLATION, a wrong fill byte a torn read —
// either counts against the column. The async column keeps serving ON but
// runs the replication channel asynchronously: default-staleness reads must
// then provably fall through (replica_serves == 0) because the lease
// sentinel is strict when an acked write may not have reached the copy.
#ifndef FAASM_BENCH_REPLICA_READ_UTIL_H_
#define FAASM_BENCH_REPLICA_READ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/cluster.h"

namespace faasm {

struct ReplicaMicroPoint {
  uint64_t read_rpcs = 0;       // cross-host read RPCs at the shard servers
  uint64_t replica_serves = 0;  // reads answered by a co-located replica
  double network_mb = 0;
  double seconds = 0;
  uint64_t staleness_violations = 0;  // read returned a version behind the ack
  uint64_t bad_reads = 0;             // failed, missized, or torn value
};

struct ReplicaMicroConfig {
  int hosts = 4;
  int keys = 16;
  int rounds = 32;
  bool replica_reads = true;
  bool sync = true;

  static ReplicaMicroConfig ForScale(bool tiny, bool replica_reads, bool sync) {
    ReplicaMicroConfig config;
    if (tiny) {
      config.keys = 8;
      config.rounds = 16;
    }
    config.replica_reads = replica_reads;
    config.sync = sync;
    return config;
  }
};

constexpr size_t kReplicaMicroValueBytes = 256;

inline std::string ReplicaMicroKey(int i) { return "rr-value-" + std::to_string(i); }

// version stamp (8 bytes LE) + fill pattern for the rest of the value.
inline Bytes ReplicaMicroValue(int key, uint64_t version) {
  Bytes value(kReplicaMicroValueBytes, uint8_t(key + 1));
  std::memcpy(value.data(), &version, sizeof(version));
  return value;
}

inline void PrintReplicaMicroRow(const char* name, const ReplicaMicroPoint& point) {
  std::printf("%14s | %10llu %14llu %12.2f %12.0f %7llu %5llu\n", name,
              static_cast<unsigned long long>(point.read_rpcs),
              static_cast<unsigned long long>(point.replica_serves), point.network_mb,
              point.seconds * 1e3,
              static_cast<unsigned long long>(point.staleness_violations),
              static_cast<unsigned long long>(point.bad_reads));
}

inline void WriteReplicaMicroPointJson(std::FILE* f, const char* name,
                                       const ReplicaMicroPoint& p, const char* suffix) {
  std::fprintf(f,
               "    \"%s\": {\"read_rpcs\": %llu, \"replica_serves\": %llu, "
               "\"network_mb\": %.3f, \"seconds\": %.4f, "
               "\"staleness_violations\": %llu, \"bad_reads\": %llu}%s\n",
               name, static_cast<unsigned long long>(p.read_rpcs),
               static_cast<unsigned long long>(p.replica_serves), p.network_mb, p.seconds,
               static_cast<unsigned long long>(p.staleness_violations),
               static_cast<unsigned long long>(p.bad_reads), suffix);
}

inline ReplicaMicroPoint RunReplicaReadMicro(const ReplicaMicroConfig& micro) {
  ClusterConfig cluster_config;
  cluster_config.hosts = micro.hosts;
  cluster_config.state_tier = StateTier::kSharded;
  cluster_config.replication_factor = 2;
  cluster_config.replication_sync = micro.sync;
  cluster_config.replica_reads = micro.replica_reads;
  FaasmCluster cluster(cluster_config);

  for (int i = 0; i < micro.keys; ++i) {
    cluster.kvs().Set(ReplicaMicroKey(i), ReplicaMicroValue(i, 0));
  }

  // Resolve each key's holder host indices once (the ring is static here).
  std::vector<size_t> master_of(micro.keys), backup_of(micro.keys);
  {
    const ShardAssignment snapshot = cluster.shard_map().Snapshot();
    auto index_of = [&](const std::string& host) {
      for (size_t i = 0; i < cluster.host_count(); ++i) {
        if (cluster.host(i).name() == host) {
          return i;
        }
      }
      return size_t{0};
    };
    for (int i = 0; i < micro.keys; ++i) {
      const std::string master = snapshot.MasterFor(ReplicaMicroKey(i));
      const auto backups = BackupsFor(snapshot.endpoints(), master, 2);
      master_of[i] = index_of(ShardMap::HostForEndpoint(master));
      backup_of[i] = index_of(
          ShardMap::HostForEndpoint(backups.empty() ? master : backups[0]));
    }
  }

  ReplicaMicroPoint point;
  cluster.network().ResetStats();
  cluster.Run([&](Frontend&) {
    const TimeNs start = cluster.clock().Now();
    for (int round = 1; round <= micro.rounds; ++round) {
      for (int i = 0; i < micro.keys; ++i) {
        const std::string key = ReplicaMicroKey(i);
        // Acked write through the master's own client: version `round`.
        if (!cluster.host(master_of[i]).kvs().Set(key, ReplicaMicroValue(i, round)).ok()) {
          point.bad_reads += 1;
          continue;
        }
        // Read from a holder, alternating master/backup per (round, key) —
        // the widened-affinity placement mix.
        const size_t reader = (round + i) % 2 == 0 ? master_of[i] : backup_of[i];
        auto read = cluster.host(reader).kvs().Read(key);
        if (!read.ok() || read.value().size() != kReplicaMicroValueBytes) {
          point.bad_reads += 1;
          continue;
        }
        uint64_t version = 0;
        std::memcpy(&version, read.value().data(), sizeof(version));
        if (version < static_cast<uint64_t>(round)) {
          point.staleness_violations += 1;
        }
        for (size_t b = sizeof(version); b < kReplicaMicroValueBytes; ++b) {
          if (read.value()[b] != uint8_t(i + 1)) {
            point.bad_reads += 1;
            break;
          }
        }
      }
    }
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });

  for (size_t host = 0; host < cluster.host_count(); ++host) {
    if (const KvsServer* server = cluster.host(host).shard_server()) {
      point.read_rpcs += server->read_rpc_count();
    }
    point.replica_serves += cluster.host(host).kvs().replica_served_count();
  }
  point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  return point;
}

}  // namespace faasm

#endif  // FAASM_BENCH_REPLICA_READ_UTIL_H_
