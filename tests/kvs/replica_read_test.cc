// Unit tests for tier two of the read path: ReplicaShard::ReadValue's
// certification contract (anchor-only epoch stamps, fencing, forwarded-op
// exactness), the async freshness probe halves (FloorSeq vs KvStore::KeySeq),
// holder resolution (ShardMap::HoldersFor), and the client integration —
// reads served in-process from a co-located backup with zero read RPCs at
// the master, falling through whenever the copy cannot prove itself.
#include <gtest/gtest.h>

#include "kvs/kvs_client.h"
#include "kvs/replication.h"
#include "net/network.h"

namespace faasm {
namespace {

KeyExport Exported(KvStore& store, const std::string& key) { return store.ExportKey(key); }

// --- ReplicaShard::ReadValue certification -------------------------------------

TEST(ReplicaReadValueTest, CertifiedInstallServesTheStoresAnswer) {
  ReplicaShard replica;  // map-less: certifies against the constant epoch 0
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{1, 2, 3, 4}).ok());
  replica.Install("key", Exported(primary, "key"));

  auto whole = replica.ReadValue("key", 0, ReadOptions::kWholeValue);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole.value(), (Bytes{1, 2, 3, 4}));
  // Ranged reads serve the requested window, exactly like the master would.
  auto window = replica.ReadValue("key", 1, 2);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window.value(), (Bytes{2, 3}));
  EXPECT_EQ(replica.replica_read_count(), 2u);
}

TEST(ReplicaReadValueTest, ForwardOnlyKeyIsNeverCertified) {
  // Forwards keep a certified copy exact but never certify one themselves:
  // a key that only ever arrived via ApplyForwarded must not serve (the
  // forward stream alone cannot prove the copy is complete).
  ReplicaShard replica;
  KvsBatchOp op;
  op.op = KvsOp::kSet;
  op.key = "key";
  op.bytes = Bytes{7};
  op.seq = 3;
  ASSERT_TRUE(replica.ApplyForwarded({op})[0].status.ok());

  auto read = replica.ReadValue("key", 0, ReadOptions::kWholeValue);
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(replica.replica_read_count(), 0u);
}

TEST(ReplicaReadValueTest, OnlyIfNewerSkipDoesNotCertify) {
  // The mirror path's skipped (stale) snapshot must not stamp: the copy it
  // declined to write proves nothing about what IS there.
  ReplicaShard replica;
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{1}).ok());
  const KeyExport stale = Exported(primary, "key");

  KvsBatchOp newer;
  newer.op = KvsOp::kSet;
  newer.key = "key";
  newer.bytes = Bytes{2};
  newer.seq = stale.seq + 5;
  ASSERT_TRUE(replica.ApplyForwarded({newer})[0].status.ok());

  replica.Install("key", stale, /*only_if_newer=*/true);  // skipped: floor is higher
  EXPECT_EQ(replica.ReadValue("key", 0, ReadOptions::kWholeValue).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ReplicaReadValueTest, UnknownKeyFallsThroughButCertifiedDeleteServesNotFound) {
  ReplicaShard replica;
  // Never-seen key: no stamp, fall through (the master may well have it).
  EXPECT_EQ(replica.ReadValue("ghost", 0, ReadOptions::kWholeValue).status().code(),
            StatusCode::kFailedPrecondition);

  // Install then a forwarded delete: the copy is exact — both sides empty —
  // so the replica's NotFound IS the master's answer, and it counts as a
  // served read (a read RPC that never happened).
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{1}).ok());
  const KeyExport record = Exported(primary, "key");
  replica.Install("key", record);
  KvsBatchOp del;
  del.op = KvsOp::kDelete;
  del.key = "key";
  del.seq = record.seq + 1;
  ASSERT_TRUE(replica.ApplyForwarded({del})[0].status.ok());

  EXPECT_EQ(replica.ReadValue("key", 0, ReadOptions::kWholeValue).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(replica.replica_read_count(), 1u);
}

TEST(ReplicaReadValueTest, FencedReplicaBouncesUnavailable) {
  ReplicaShard replica;
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{1}).ok());
  replica.Install("key", Exported(primary, "key"));
  ASSERT_TRUE(replica.ReadValue("key", 0, ReadOptions::kWholeValue).ok());

  replica.Fence();
  // The fence clears every stamp AND rejects outright: a zombie host must
  // find nothing servable after the cluster declared it dead.
  EXPECT_EQ(replica.ReadValue("key", 0, ReadOptions::kWholeValue).status().code(),
            StatusCode::kUnavailable);
  replica.Unfence();
  EXPECT_EQ(replica.ReadValue("key", 0, ReadOptions::kWholeValue).status().code(),
            StatusCode::kFailedPrecondition);  // re-armed, but nothing re-certified yet
}

TEST(ReplicaReadValueTest, EpochFlipInvalidatesUntilReanchored) {
  ShardMap map;
  map.AddShard("kvs:host-0");
  ReplicaShard replica(&map);
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{6}).ok());
  const KeyExport record = Exported(primary, "key");
  replica.Install("key", record);
  ASSERT_TRUE(replica.ReadValue("key", 0, ReadOptions::kWholeValue).ok());

  // Membership moves: the stamp is now stale, exactly like a read-cache
  // entry installed under the old epoch.
  map.AddShard("kvs:host-1");
  EXPECT_EQ(replica.ReadValue("key", 0, ReadOptions::kWholeValue).status().code(),
            StatusCode::kFailedPrecondition);

  // Reconcile's content-match path re-certifies at the live epoch without
  // moving bytes.
  replica.AnchorFloorAt("key", record.seq, map.epoch());
  EXPECT_TRUE(replica.ReadValue("key", 0, ReadOptions::kWholeValue).ok());
}

TEST(ReplicaReadValueTest, ForwardsKeepACertifiedCopyServableAcrossMutations) {
  // Between the anchor and any flip the key's master (hence seq space) is
  // constant, so sync forwards keep the copy exact — the stamp stays valid
  // and reads observe every forwarded write.
  ReplicaShard replica;
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{1}).ok());
  const KeyExport record = Exported(primary, "key");
  replica.Install("key", record);

  KvsBatchOp append;
  append.op = KvsOp::kAppend;
  append.key = "key";
  append.bytes = Bytes{9};
  append.seq = record.seq + 1;
  ASSERT_TRUE(replica.ApplyForwarded({append})[0].status.ok());

  auto read = replica.ReadValue("key", 0, ReadOptions::kWholeValue);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (Bytes{1, 9}));
  EXPECT_EQ(replica.FloorSeq("key"), record.seq + 1);
}

// --- The async probe halves ----------------------------------------------------

TEST(KeySeqTest, TracksLastForwardedMutationPerKey) {
  // KeySeq tracks FORWARDED mutations: without replication (no update hook)
  // it stays 0, which makes the async probe a no-op exactly when there is
  // no replica to probe for.
  KvStore unhooked;
  ASSERT_TRUE(unhooked.Set("key", Bytes{1}).ok());
  EXPECT_EQ(unhooked.KeySeq("key"), 0u);

  KvStore store;
  store.SetUpdateHook([](const std::vector<KvStore::ForwardedOp>&) {});
  EXPECT_EQ(store.KeySeq("key"), 0u);
  ASSERT_TRUE(store.Set("key", Bytes{1}).ok());
  const uint64_t first = store.KeySeq("key");
  EXPECT_GT(first, 0u);
  ASSERT_TRUE(store.Append("key", Bytes{2}).ok());
  EXPECT_GT(store.KeySeq("key"), first);
  // Another key's mutations do not move this key's seq.
  const uint64_t after_append = store.KeySeq("key");
  ASSERT_TRUE(store.Set("other", Bytes{3}).ok());
  EXPECT_EQ(store.KeySeq("key"), after_append);
}

TEST(KeySeqTest, InstallRebasesAndEraseClears) {
  KvStore source;
  ASSERT_TRUE(source.Set("key", Bytes{5}).ok());
  KvStore target;
  target.SetUpdateHook([](const std::vector<KvStore::ForwardedOp>&) {});
  // A migrated-in key re-bases to the target's own seq space: the floor a
  // later export stamps comes from the same counter, so probe comparisons
  // never mix spaces.
  target.InstallKey("key", source.ExportKey("key"));
  const uint64_t installed = target.KeySeq("key");
  ASSERT_TRUE(target.Append("key", Bytes{6}).ok());
  EXPECT_GT(target.KeySeq("key"), installed);

  target.EraseKey("key");
  EXPECT_EQ(target.KeySeq("key"), 0u);
}

// --- Holder resolution ---------------------------------------------------------

TEST(HoldersForTest, MasterFirstThenBackupsAtTheConfiguredFactor) {
  ShardMap map;
  for (int i = 0; i < 4; ++i) {
    map.AddShard(ShardMap::EndpointForHost("host-" + std::to_string(i)));
  }
  // Factor defaults to 1: holders are the master alone.
  EXPECT_EQ(map.HoldersFor("key").size(), 1u);
  EXPECT_EQ(map.HoldersFor("key")[0], map.MasterFor("key"));

  map.set_replication_factor(3);
  const auto holders = map.HoldersFor("key");
  ASSERT_EQ(holders.size(), 3u);
  EXPECT_EQ(holders[0], map.MasterFor("key"));
  const auto backups = BackupsFor(map.Snapshot().endpoints(), holders[0], 3);
  ASSERT_EQ(backups.size(), 2u);
  EXPECT_EQ(holders[1], backups[0]);
  EXPECT_EQ(holders[2], backups[1]);
}

// --- Client integration: reads served from the co-located backup ---------------

constexpr int kHosts = 3;

class ReplicaReadClientTest : public ::testing::Test {
 protected:
  ReplicaReadClientTest() : network_(&clock_, NoLatency()) {
    for (int i = 0; i < kHosts; ++i) {
      const std::string name = "host-" + std::to_string(i);
      const std::string endpoint = ShardMap::EndpointForHost(name);
      stores_[endpoint] = &shards_[i];
      servers_.push_back(
          std::make_unique<KvsServer>(&shards_[i], &network_, endpoint, &map_));
      map_.AddShard(endpoint);
    }
    map_.set_replication_factor(2);
  }

  std::unique_ptr<ReplicationManager> MakeManager(bool sync, int max_lag_ops = 32) {
    ReplicationConfig config;
    config.factor = 2;
    config.sync = sync;
    config.max_lag_ops = max_lag_ops;
    auto manager = std::make_unique<ReplicationManager>(&network_, &map_, &stores_, config);
    for (int i = 0; i < kHosts; ++i) {
      const std::string name = "host-" + std::to_string(i);
      manager->AttachHost(name, stores_[ShardMap::EndpointForHost(name)]);
    }
    return manager;
  }

  // A client running ON `host`, wired for replica reads like the cluster
  // wires every instance's client.
  std::unique_ptr<KvsClient> MakeClient(const std::string& host, ReplicationManager* manager,
                                        bool sync, TimeNs lag_bound = 0) {
    auto client = std::make_unique<KvsClient>(&network_, host, &map_,
                                              stores_[ShardMap::EndpointForHost(host)]);
    KvsClient::ReplicaReadConfig config;
    config.replica = manager->ReplicaForHost(host);
    config.factor = 2;
    config.sync = sync;
    config.async_lag_bound_ns = lag_bound;
    config.primary_seq = [this](const std::string& key) {
      return stores_[map_.MasterFor(key)]->KeySeq(key);
    };
    client->EnableReplicaReads(std::move(config));
    return client;
  }

  // A key mastered by `master` and backed up on `backup` (R=2).
  std::string KeyHeldBy(const std::string& master, const std::string& backup) {
    const std::string master_endpoint = ShardMap::EndpointForHost(master);
    const std::string backup_endpoint = ShardMap::EndpointForHost(backup);
    for (int i = 0; i < 100000; ++i) {
      std::string probe = "probe-" + std::to_string(i);
      if (map_.MasterFor(probe) != master_endpoint) {
        continue;
      }
      const auto backups = BackupsFor(map_.Snapshot().endpoints(), master_endpoint, 2);
      if (!backups.empty() && backups[0] == backup_endpoint) {
        return probe;
      }
    }
    ADD_FAILURE() << "no key mastered by " << master << " backed by " << backup;
    return "";
  }

  // The backup host for keys `master` masters (R=2: exactly one).
  std::string BackupHostOf(const std::string& master) {
    const auto backups =
        BackupsFor(map_.Snapshot().endpoints(), ShardMap::EndpointForHost(master), 2);
    return backups.empty() ? "" : ShardMap::HostForEndpoint(backups[0]);
  }

  uint64_t MasterReadRpcs(const std::string& master) {
    for (auto& server : servers_) {
      if (server->endpoint() == ShardMap::EndpointForHost(master)) {
        return server->read_rpc_count();
      }
    }
    ADD_FAILURE() << "no server for " << master;
    return 0;
  }

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore shards_[kHosts];
  std::map<std::string, KvStore*> stores_;
  std::vector<std::unique_ptr<KvsServer>> servers_;
  ShardMap map_;
};

TEST_F(ReplicaReadClientTest, SyncBackupServesReadsWithZeroReadRpcs) {
  auto manager = MakeManager(/*sync=*/true);
  const std::string backup = BackupHostOf("host-0");
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(backup, manager.get(), /*sync=*/true);

  // Write through a plain client at the master, so the sync forward lands
  // the value on the backup before the ack.
  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{1, 2}).ok());
  const uint64_t rpcs_before = MasterReadRpcs("host-0");
  const uint64_t bytes_before = network_.total_bytes();

  // Wait: the MIRROR installed the key (certified); sync the manager state.
  manager->Reconcile();

  auto read = client->Read(key);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (Bytes{1, 2}));
  EXPECT_EQ(MasterReadRpcs("host-0"), rpcs_before);        // no read RPC happened
  EXPECT_EQ(network_.total_bytes(), bytes_before);         // zero network bytes
  EXPECT_EQ(client->replica_served_count(), 1u);
  EXPECT_EQ(manager->ReplicaForHost(backup)->replica_read_count(), 1u);

  // An acked write through the master is observed by the very next replica
  // read: sync mode applies at every live backup before the ack.
  ASSERT_TRUE(writer.Set(key, Bytes{9}).ok());
  auto fresh = client->Read(key);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value(), (Bytes{9}));
  EXPECT_EQ(client->replica_served_count(), 2u);
}

TEST_F(ReplicaReadClientTest, NonHolderFallsThroughToTheMaster) {
  auto manager = MakeManager(/*sync=*/true);
  const std::string backup = BackupHostOf("host-0");
  // The third host neither masters nor backs the key: its client pays the
  // read RPC like before.
  std::string outsider;
  for (int i = 0; i < kHosts; ++i) {
    const std::string name = "host-" + std::to_string(i);
    if (name != "host-0" && name != backup) {
      outsider = name;
    }
  }
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(outsider, manager.get(), /*sync=*/true);

  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{4}).ok());
  const uint64_t rpcs_before = MasterReadRpcs("host-0");
  auto read = client->Read(key);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (Bytes{4}));
  EXPECT_EQ(MasterReadRpcs("host-0"), rpcs_before + 1);
  EXPECT_EQ(client->replica_served_count(), 0u);
}

TEST_F(ReplicaReadClientTest, EpochFlipFallsThroughUntilReconcileRecertifies) {
  auto manager = MakeManager(/*sync=*/true);
  const std::string backup = BackupHostOf("host-0");
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(backup, manager.get(), /*sync=*/true);

  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{3}).ok());
  manager->Reconcile();
  ASSERT_TRUE(client->Read(key).ok());
  ASSERT_EQ(client->replica_served_count(), 1u);

  // Membership moves: a scratch shard joins and leaves again. The ring ends
  // up byte-identical, but the epoch advanced twice — every stamp predates
  // the flips, so the replica refuses and the read pays the master RPC.
  map_.AddShard("kvs:host-9");
  map_.RemoveShard("kvs:host-9");
  const uint64_t rpcs_before = MasterReadRpcs("host-0");
  auto read = client->Read(key);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (Bytes{3}));
  EXPECT_EQ(client->replica_served_count(), 1u);  // unchanged: fell through
  EXPECT_EQ(MasterReadRpcs("host-0"), rpcs_before + 1);

  // Reconcile re-certifies the (unchanged) copies at the live epoch: the
  // content-match path anchors without moving bytes, and serves resume.
  manager->Reconcile();
  ASSERT_TRUE(client->Read(key).ok());
  EXPECT_EQ(client->replica_served_count(), 2u);
}

TEST_F(ReplicaReadClientTest, FencedReplicaNeverServesAndFeedsSuspicion) {
  auto manager = MakeManager(/*sync=*/true);
  const std::string backup = BackupHostOf("host-0");
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(backup, manager.get(), /*sync=*/true);

  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{8}).ok());
  manager->Reconcile();
  std::vector<std::string> suspicions;
  client->SetSuspicionHook([&](const std::string& endpoint) { suspicions.push_back(endpoint); });

  // The cluster fences this host's mirror (its crash was confirmed); a
  // zombie read must fall through to the master, never serve locally, and
  // report itself as crash evidence.
  manager->FenceHost(backup);
  auto read = client->Read(key);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (Bytes{8}));
  EXPECT_EQ(client->replica_served_count(), 0u);
  ASSERT_EQ(suspicions.size(), 1u);
  EXPECT_EQ(suspicions[0], ReplicaEndpointForHost(backup));
}

TEST_F(ReplicaReadClientTest, ReadYourWritesFlushesTheAmbientBatchFirst) {
  auto manager = MakeManager(/*sync=*/true);
  const std::string backup = BackupHostOf("host-0");
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(backup, manager.get(), /*sync=*/true);
  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{1}).ok());
  manager->Reconcile();

  // Enqueue a write into the ambient batch WITHOUT flushing; the very next
  // replica-eligible read must observe it (flush-before-serve), not the
  // pre-write replica copy.
  client->EnableBatching();
  client->BeginBatchScope();
  client->EnqueueSetRanges(key, {ValueRange{0, Bytes{42}}}, nullptr);
  auto read = client->Read(key);
  client->EndBatchScope();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (Bytes{42}));
}

TEST_F(ReplicaReadClientTest, AsyncDefaultReadFallsThroughAndCaughtUpCopyServes) {
  // Async replication with a large queue: forwards lag until FlushAll.
  auto manager = MakeManager(/*sync=*/false, /*max_lag_ops=*/1000);
  const std::string backup = BackupHostOf("host-0");
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(backup, manager.get(), /*sync=*/false,
                           /*lag_bound=*/5 * kMillisecond);

  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{1}).ok());
  manager->Reconcile();  // certify the copy (content now matches)

  // Another acked write that the async queue has NOT shipped yet.
  ASSERT_TRUE(writer.Set(key, Bytes{2}).ok());

  // Default staleness (the lease sentinel) is strict: provably falls
  // through regardless of lag.
  auto strict = client->Read(key);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.value(), (Bytes{2}));
  EXPECT_EQ(client->replica_served_count(), 0u);

  // Even a generous staleness budget cannot license a LAGGING copy: the
  // per-key probe (FloorSeq < primary KeySeq) fails while the queue holds
  // the write.
  ReadOptions generous;
  generous.max_staleness = 10 * kMillisecond;
  auto probed = client->Read(key, generous);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(probed.value(), (Bytes{2}));
  EXPECT_EQ(client->replica_served_count(), 0u);

  // Drain the queue: the copy catches up, the probe passes, and the same
  // generous read is now served locally — with the acked bytes.
  manager->FlushAll();
  auto served = client->Read(key, generous);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.value(), (Bytes{2}));
  EXPECT_EQ(client->replica_served_count(), 1u);

  // A budget tighter than the configured lag bound falls through even when
  // the copy is caught up: the policy gate is deliberate, not best-effort.
  ReadOptions tight;
  tight.max_staleness = 1 * kMillisecond;
  ASSERT_TRUE(client->Read(key, tight).ok());
  EXPECT_EQ(client->replica_served_count(), 1u);
}

TEST_F(ReplicaReadClientTest, BatchReadsServeFromTheReplicaAndSkipSelfMutatedKeys) {
  auto manager = MakeManager(/*sync=*/true);
  const std::string backup = BackupHostOf("host-0");
  const std::string key = KeyHeldBy("host-0", backup);
  auto client = MakeClient(backup, manager.get(), /*sync=*/true);
  KvsClient writer(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(writer.Set(key, Bytes{1}).ok());
  manager->Reconcile();

  // A pure read batch: the replica-held key is served locally, in-process.
  {
    OpBatch batch;
    Result<Bytes> got = NotFound("unset");
    batch.Read(key, [&](const Result<Bytes>& result) { got = result; });
    ASSERT_TRUE(client->ExecuteBatchNow(std::move(batch)).ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), (Bytes{1}));
    EXPECT_EQ(client->replica_served_count(), 1u);
  }

  // A batch that writes the key THEN reads it: the read must not jump the
  // batch's own write — it rides to the master and returns the new bytes.
  {
    OpBatch batch;
    Result<Bytes> got = NotFound("unset");
    batch.Set(key, Bytes{77});
    batch.Read(key, [&](const Result<Bytes>& result) { got = result; });
    ASSERT_TRUE(client->ExecuteBatchNow(std::move(batch)).ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), (Bytes{77}));
    EXPECT_EQ(client->replica_served_count(), 1u);  // unchanged: skipped
  }
}

}  // namespace
}  // namespace faasm
