// Core WebAssembly types (MVP + sign-extension operators), following the
// binary encoding of the WebAssembly 1.0 specification.
#ifndef FAASM_WASM_TYPES_H_
#define FAASM_WASM_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace faasm::wasm {

enum class ValType : uint8_t {
  kI32 = 0x7F,
  kI64 = 0x7E,
  kF32 = 0x7D,
  kF64 = 0x7C,
};

const char* ValTypeName(ValType t);
bool IsValidValType(uint8_t byte);

// Block type: empty (no result) or a single value type (MVP).
struct BlockType {
  bool has_result = false;
  ValType result = ValType::kI32;

  static BlockType Empty() { return BlockType{}; }
  static BlockType Of(ValType t) { return BlockType{true, t}; }

  size_t arity() const { return has_result ? 1 : 0; }
};

constexpr uint8_t kBlockTypeEmpty = 0x40;
constexpr uint8_t kFuncTypeTag = 0x60;
constexpr uint8_t kFuncRefTag = 0x70;

struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType& other) const {
    return params == other.params && results == other.results;
  }

  std::string ToString() const;
};

struct Limits {
  uint32_t min = 0;
  bool has_max = false;
  uint32_t max = 0;
};

// An untagged wasm value. Validation guarantees that producers and consumers
// agree on the active member, so no runtime tag is carried.
union Value {
  uint32_t i32;
  uint64_t i64;
  float f32;
  double f64;
};

inline Value MakeI32(uint32_t v) {
  Value out;
  out.i64 = 0;
  out.i32 = v;
  return out;
}
inline Value MakeI64(uint64_t v) {
  Value out;
  out.i64 = v;
  return out;
}
inline Value MakeF32(float v) {
  Value out;
  out.i64 = 0;
  out.f32 = v;
  return out;
}
inline Value MakeF64(double v) {
  Value out;
  out.f64 = v;
  return out;
}

// Trap reasons, mirroring the spec's runtime errors. Traps are surfaced as
// non-OK Status values whose messages start with "trap:".
enum class TrapKind {
  kUnreachable,
  kMemoryOutOfBounds,
  kIntegerDivideByZero,
  kIntegerOverflow,
  kInvalidConversion,
  kUndefinedElement,
  kUninitializedElement,
  kIndirectCallTypeMismatch,
  kCallStackExhausted,
  kValueStackExhausted,
  kFuelExhausted,
  kHostError,
};

const char* TrapKindName(TrapKind kind);
Status TrapStatus(TrapKind kind, const std::string& detail = "");

// True if `status` represents a wasm trap (vs. an embedder error).
bool IsTrap(const Status& status);

}  // namespace faasm::wasm

#endif  // FAASM_WASM_TYPES_H_
