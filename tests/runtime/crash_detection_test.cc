// Cluster-level failure detection (ISSUE 9 acceptance): CrashHost pulls the
// plug and NOTHING tells the cluster — the heartbeat detector has to notice
// the silence, corroborate with a probe, and drive the same fence → quiesce
// → Failover → Reconcile recovery the KillHost oracle uses. Covers the
// detection-latency bound, the no-false-positive flap case (a slow host is
// suspected, probed, and cleared — never failed over), and the double-crash
// during in-flight recovery that exercises the deferred-promotion path in
// replication.cc.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "kvs/replication.h"
#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {
namespace {

constexpr int kCounters = 8;

std::string CounterKey(int i) { return "counter-" + std::to_string(i); }

// The cross-host increment from failover_test.cc: global write lock,
// invalidate + pull, bump, delta push, unlock.
void RegisterIncrement(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("inc",
                                  [](InvocationContext& ctx) {
                                    ByteReader reader(ctx.Input());
                                    auto index = reader.Get<uint32_t>();
                                    if (!index.ok()) {
                                      return 1;
                                    }
                                    SharedArray<uint64_t> counter(&ctx.state(),
                                                                  CounterKey(index.value()));
                                    if (!counter.kv().LockGlobalWrite().ok()) {
                                      return 2;
                                    }
                                    counter.kv().InvalidateReplica();
                                    if (!counter.Attach().ok()) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 3;
                                    }
                                    uint64_t* value = counter.WritableElements(0, 1);
                                    if (value == nullptr) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 4;
                                    }
                                    *value += 1;
                                    counter.MarkDirtyElements(0, 1);
                                    const bool pushed = counter.Push().ok();
                                    const bool unlocked =
                                        counter.kv().UnlockGlobalWrite().ok();
                                    return pushed && unlocked ? 0 : 5;
                                  })
                  .ok());
}

uint64_t ReadCounter(FaasmCluster& cluster, int i) {
  auto value = cluster.kvs().Get(CounterKey(i));
  if (!value.ok() || value.value().size() != sizeof(uint64_t)) {
    ADD_FAILURE() << "counter " << i << " unreadable: " << value.status().ToString();
    return 0;
  }
  uint64_t count = 0;
  std::memcpy(&count, value.value().data(), sizeof(count));
  return count;
}

void SeedCountersAndBallast(FaasmCluster& cluster, int ballast) {
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  for (int i = 0; i < ballast; ++i) {
    ASSERT_TRUE(
        cluster.kvs().Set("ballast-" + std::to_string(i), Bytes(32, uint8_t(i))).ok());
  }
}

// No live shard may route at a corpse: not as a master (the map) and not as
// a replication target (BackupsFor over the live endpoint set).
void ExpectNoDeadEndpoints(FaasmCluster& cluster, const std::set<std::string>& dead_endpoints,
                           int replication_factor) {
  const std::vector<std::string> shards = cluster.shard_map().shards();
  const std::set<std::string> live(shards.begin(), shards.end());
  for (const std::string& dead : dead_endpoints) {
    EXPECT_EQ(live.count(dead), 0u) << dead << " still in the shard map";
  }
  for (const std::string& shard : shards) {
    for (const std::string& backup : BackupsFor(live, shard, replication_factor)) {
      EXPECT_EQ(dead_endpoints.count(backup), 0u)
          << shard << " lists dead backup " << backup;
    }
  }
}

TEST(CrashDetectionTest, DetectorConfirmsCrashAndClusterSelfHeals) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  config.failure_detection = true;
  FaasmCluster cluster(config);
  SeedCountersAndBallast(cluster, 40);
  RegisterIncrement(cluster);

  const std::string dead_endpoint = ShardMap::EndpointForHost("host-1");
  const uint64_t epoch_before = cluster.shard_map().epoch();
  std::array<uint64_t, kCounters> acked{};
  uint64_t mail_failures = 0;

  cluster.Run([&](Frontend& frontend) {
    // Load in flight when the plug is pulled.
    std::vector<std::pair<uint64_t, uint32_t>> batch;
    for (int i = 0; i < 3 * kCounters; ++i) {
      const uint32_t counter = i % kCounters;
      Bytes input;
      ByteWriter writer(input);
      writer.Put<uint32_t>(counter);
      auto id = frontend.Submit("inc", std::move(input));
      ASSERT_TRUE(id.ok());
      batch.emplace_back(id.value(), counter);
    }

    const TimeNs crashed_at = cluster.clock().Now();
    ASSERT_TRUE(cluster.CrashHost("host-1").ok());  // no oracle after this

    const FailureDetector* detector = cluster.failure_detector();
    ASSERT_NE(detector, nullptr);
    ASSERT_TRUE(cluster.clock().WaitFor([&] { return detector->death_count() >= 1; },
                                        100 * kMicrosecond, crashed_at + kSecond))
        << "detector never confirmed the crash";

    // Detection latency bound (the fig10 --detect gate, asserted here too):
    // suspicion timeout + one heartbeat interval covers the last-beat-to-
    // silence gap plus the sweep that probes.
    const std::vector<DeathRecord> deaths = detector->deaths();
    ASSERT_EQ(deaths.size(), 1u);
    EXPECT_EQ(deaths[0].host, "host-1");
    EXPECT_LE(deaths[0].confirmed_at_ns - crashed_at,
              config.suspicion_timeout_ns + config.heartbeat_interval_ns);
    EXPECT_EQ(detector->HealthOf("host-1"), HostHealth::kDead);

    // In-flight calls resolve: acked or failed, never hung.
    for (const auto& [id, counter] : batch) {
      auto code = frontend.Await(id);
      if (code.ok() && code.value() == 0) {
        acked[counter] += 1;
      } else {
        mail_failures += 1;
      }
    }
  });

  // Recovery ran to completion before death_count() ticked: epoch flipped,
  // corpse out of routing AND out of every backup set, its mirror fenced.
  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 1);
  EXPECT_EQ(cluster.shard_map().shard_count(), 3u);
  ExpectNoDeadEndpoints(cluster, {dead_endpoint}, config.replication_factor);
  ASSERT_NE(cluster.replication(), nullptr);
  const ReplicaShard* mirror = cluster.replication()->ReplicaForHost("host-1");
  ASSERT_NE(mirror, nullptr);
  EXPECT_TRUE(mirror->fenced()) << "dead host's rep: mirror accepts forwards";

  // The replicated substrate held: every acked increment survived.
  EXPECT_EQ(cluster.failover_stats().lost_keys, 0u);
  EXPECT_GT(cluster.failover_stats().promoted_keys, 0u);
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
  (void)mail_failures;  // timing-dependent; un-acked failures are allowed
}

TEST(CrashDetectionTest, SlowHostFlapIsClearedNeverFailedOver) {
  // The flap test the ISSUE gates on: a host whose heartbeats stall but
  // which still answers RPCs must be suspected, probed, CLEARED — and never
  // promoted away from. A timeout-only detector would have split the brain.
  ClusterConfig config;
  config.hosts = 3;
  config.replication_factor = 2;
  config.failure_detection = true;
  FaasmCluster cluster(config);
  SeedCountersAndBallast(cluster, 0);
  RegisterIncrement(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  std::array<uint64_t, kCounters> acked{};

  cluster.Run([&](Frontend& frontend) {
    FaasmInstance* slow = nullptr;
    for (size_t i = 0; i < cluster.host_count(); ++i) {
      if (cluster.host(i).name() == "host-2") {
        slow = &cluster.host(i);
      }
    }
    ASSERT_NE(slow, nullptr);
    slow->set_heartbeats_suppressed(true);  // stalls the publisher, NOT the host

    // Keep load flowing while the detector grows suspicious.
    std::vector<std::pair<uint64_t, uint32_t>> batch;
    for (int i = 0; i < 2 * kCounters; ++i) {
      const uint32_t counter = i % kCounters;
      Bytes input;
      ByteWriter writer(input);
      writer.Put<uint32_t>(counter);
      auto id = frontend.Submit("inc", std::move(input));
      ASSERT_TRUE(id.ok());
      batch.emplace_back(id.value(), counter);
    }

    const FailureDetector* detector = cluster.failure_detector();
    ASSERT_NE(detector, nullptr);
    ASSERT_TRUE(cluster.clock().WaitFor(
        [&] { return detector->false_suspicions() >= 1; }, 100 * kMicrosecond,
        cluster.clock().Now() + kSecond))
        << "the silent host was never suspected";

    // Suspected — and the probe cleared it. No death, no failover.
    EXPECT_GE(detector->suspicions(), 1u);
    EXPECT_EQ(detector->death_count(), 0u);
    EXPECT_EQ(detector->HealthOf("host-2"), HostHealth::kAlive);

    for (const auto& [id, counter] : batch) {
      auto code = frontend.Await(id);
      ASSERT_TRUE(code.ok());
      EXPECT_EQ(code.value(), 0);
      acked[counter] += 1;
    }

    // Heartbeats resume; give the detector several windows to prove the
    // flap left no residue.
    slow->set_heartbeats_suppressed(false);
    cluster.clock().SleepFor(4 * config.suspicion_timeout_ns);
    EXPECT_EQ(detector->death_count(), 0u);
    EXPECT_EQ(detector->HealthOf("host-2"), HostHealth::kAlive);
  });

  // No failover ran: same epoch, all three shards still routed, nothing
  // promoted, and every acked increment is exactly where it was written.
  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before);
  EXPECT_EQ(cluster.shard_map().shard_count(), 3u);
  EXPECT_EQ(cluster.host_count(), 3u);
  EXPECT_EQ(cluster.failover_stats().promoted_keys, 0u);
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
}

TEST(CrashDetectionTest, DoubleCrashDuringRecoveryLosesNoAckedState) {
  // Two hosts die back-to-back, so the first Failover re-masters keys onto a
  // shard that is ALSO dead — just not confirmed yet. The replication layer
  // must park those promotions (deferred, not lost) and the second recovery
  // must land them on a live host; the Reconcile GC must not collect the
  // last surviving copies in between.
  ClusterConfig config;
  config.hosts = 5;
  config.replication_factor = 2;
  config.failure_detection = true;
  FaasmCluster cluster(config);
  SeedCountersAndBallast(cluster, 40);
  RegisterIncrement(cluster);

  std::array<uint64_t, kCounters> acked{};
  uint64_t mail_failures = 0;

  cluster.Run([&](Frontend& frontend) {
    std::vector<std::pair<uint64_t, uint32_t>> batch;
    for (int i = 0; i < 3 * kCounters; ++i) {
      const uint32_t counter = i % kCounters;
      Bytes input;
      ByteWriter writer(input);
      writer.Put<uint32_t>(counter);
      auto id = frontend.Submit("inc", std::move(input));
      ASSERT_TRUE(id.ok());
      batch.emplace_back(id.value(), counter);
    }

    const TimeNs crashed_at = cluster.clock().Now();
    ASSERT_TRUE(cluster.CrashHost("host-1").ok());
    ASSERT_TRUE(cluster.CrashHost("host-3").ok());  // before anyone noticed #1

    const FailureDetector* detector = cluster.failure_detector();
    ASSERT_NE(detector, nullptr);
    ASSERT_TRUE(cluster.clock().WaitFor([&] { return detector->death_count() >= 2; },
                                        100 * kMicrosecond, crashed_at + 2 * kSecond))
        << "detector confirmed " << detector->death_count() << " of 2 crashes";

    for (const auto& [id, counter] : batch) {
      auto code = frontend.Await(id);
      if (code.ok() && code.value() == 0) {
        acked[counter] += 1;
      } else {
        mail_failures += 1;
      }
    }
  });

  // Both recoveries converged: three live hosts, no corpse routed anywhere.
  EXPECT_EQ(cluster.shard_map().shard_count(), 3u);
  EXPECT_EQ(cluster.host_count(), 3u);
  ExpectNoDeadEndpoints(
      cluster,
      {ShardMap::EndpointForHost("host-1"), ShardMap::EndpointForHost("host-3")},
      config.replication_factor);

  // THE acceptance bit: nothing acked was lost, even for keys whose
  // promotion target was the second corpse.
  EXPECT_EQ(cluster.failover_stats().lost_keys, 0u);
  EXPECT_GT(cluster.failover_stats().promoted_keys, 0u);
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
  for (int i = 0; i < 40; ++i) {
    auto value = cluster.kvs().Get("ballast-" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << "ballast-" << i << ": " << value.status().ToString();
    EXPECT_EQ(value.value(), Bytes(32, uint8_t(i)));
  }
  (void)mail_failures;
}

}  // namespace
}  // namespace faasm
