// LEB128 variable-length integer encoding (spec §5.2.2).
#ifndef FAASM_WASM_LEB128_H_
#define FAASM_WASM_LEB128_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace faasm::wasm {

// --- Encoding ---------------------------------------------------------------

inline void WriteVarU32(Bytes& out, uint32_t value) {
  do {
    uint8_t byte = value & 0x7F;
    value >>= 7;
    if (value != 0) {
      byte |= 0x80;
    }
    out.push_back(byte);
  } while (value != 0);
}

inline void WriteVarU64(Bytes& out, uint64_t value) {
  do {
    uint8_t byte = value & 0x7F;
    value >>= 7;
    if (value != 0) {
      byte |= 0x80;
    }
    out.push_back(byte);
  } while (value != 0);
}

inline void WriteVarS64(Bytes& out, int64_t value) {
  bool more = true;
  while (more) {
    uint8_t byte = value & 0x7F;
    value >>= 7;  // arithmetic shift
    if ((value == 0 && (byte & 0x40) == 0) || (value == -1 && (byte & 0x40) != 0)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    out.push_back(byte);
  }
}

inline void WriteVarS32(Bytes& out, int32_t value) { WriteVarS64(out, value); }

// --- Decoding ---------------------------------------------------------------

// Cursor over a byte span with bounds-checked LEB reads. Shared by the binary
// decoder and the function-body compiler.
class ByteCursor {
 public:
  ByteCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ >= size_; }

  Result<uint8_t> ReadByte() {
    if (pos_ >= size_) {
      return OutOfRange("unexpected end of wasm binary");
    }
    return data_[pos_++];
  }

  Status ReadRaw(void* dst, size_t len) {
    if (remaining() < len) {
      return OutOfRange("unexpected end of wasm binary");
    }
    std::memcpy(dst, data_ + pos_, len);
    pos_ += len;
    return OkStatus();
  }

  Status Skip(size_t len) {
    if (remaining() < len) {
      return OutOfRange("unexpected end of wasm binary");
    }
    pos_ += len;
    return OkStatus();
  }

  Result<uint32_t> ReadVarU32() {
    uint32_t result = 0;
    for (int shift = 0; shift < 35; shift += 7) {
      auto byte = ReadByte();
      if (!byte.ok()) {
        return byte.status();
      }
      result |= static_cast<uint32_t>(byte.value() & 0x7F) << shift;
      if ((byte.value() & 0x80) == 0) {
        return result;
      }
    }
    return InvalidArgument("varuint32 too long");
  }

  Result<uint64_t> ReadVarU64() {
    uint64_t result = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      auto byte = ReadByte();
      if (!byte.ok()) {
        return byte.status();
      }
      result |= static_cast<uint64_t>(byte.value() & 0x7F) << shift;
      if ((byte.value() & 0x80) == 0) {
        return result;
      }
    }
    return InvalidArgument("varuint64 too long");
  }

  Result<int64_t> ReadVarS64() {
    // Accumulate in unsigned arithmetic: at shift 63 a signed shift would
    // overflow (UB), and the two's-complement sign extension below is only
    // well-defined on uint64_t.
    uint64_t result = 0;
    int shift = 0;
    while (shift < 70) {
      auto byte = ReadByte();
      if (!byte.ok()) {
        return byte.status();
      }
      result |= static_cast<uint64_t>(byte.value() & 0x7F) << shift;
      shift += 7;
      if ((byte.value() & 0x80) == 0) {
        if (shift < 64 && (byte.value() & 0x40) != 0) {
          result |= ~uint64_t{0} << shift;  // sign extend
        }
        return static_cast<int64_t>(result);
      }
    }
    return InvalidArgument("varint64 too long");
  }

  Result<int32_t> ReadVarS32() {
    auto v = ReadVarS64();
    if (!v.ok()) {
      return v.status();
    }
    if (v.value() < INT32_MIN || v.value() > INT32_MAX) {
      return InvalidArgument("varint32 out of range");
    }
    return static_cast<int32_t>(v.value());
  }

  Result<std::string> ReadName() {
    auto len = ReadVarU32();
    if (!len.ok()) {
      return len.status();
    }
    if (remaining() < len.value()) {
      return OutOfRange("name extends past end of binary");
    }
    std::string name(reinterpret_cast<const char*>(data_ + pos_), len.value());
    pos_ += len.value();
    return name;
  }

  const uint8_t* current() const { return data_ + pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace faasm::wasm

#endif  // FAASM_WASM_LEB128_H_
