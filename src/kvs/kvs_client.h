// KvsServer / KvsClient: the wire between hosts and the global tier. Every
// remote state access is serialised through InProcNetwork so the experiments'
// network-transfer numbers include global-tier traffic, exactly as the
// paper's Redis deployment would.
#ifndef FAASM_KVS_KVS_CLIENT_H_
#define FAASM_KVS_KVS_CLIENT_H_

#include <memory>
#include <string>

#include "kvs/kv_store.h"
#include "net/network.h"

namespace faasm {

// Operation codes shared by client and server.
enum class KvsOp : uint8_t {
  kGet = 1,
  kSet = 2,
  kGetRange = 3,
  kSetRange = 4,
  kAppend = 5,
  kDelete = 6,
  kExists = 7,
  kSize = 8,
  kLockRead = 9,
  kLockWrite = 10,
  kUnlockRead = 11,
  kUnlockWrite = 12,
  kSetAdd = 13,
  kSetRemove = 14,
  kSetMembers = 15,
  kSetRanges = 16,
};

// Registers an RPC endpoint (default name "kvs") that serves a KvStore.
class KvsServer {
 public:
  KvsServer(KvStore* store, InProcNetwork* network, std::string endpoint = "kvs");
  ~KvsServer();

  const std::string& endpoint() const { return endpoint_; }

 private:
  Bytes Handle(const Bytes& request);

  KvStore* store_;
  InProcNetwork* network_;
  std::string endpoint_;
};

// Client stub. `source` is the calling host's endpoint name (for accounting).
class KvsClient {
 public:
  KvsClient(InProcNetwork* network, std::string source, std::string server = "kvs");

  Status Set(const std::string& key, const Bytes& value);
  Result<Bytes> Get(const std::string& key);
  Result<Bytes> GetRange(const std::string& key, uint64_t offset, uint64_t len);
  Status SetRange(const std::string& key, uint64_t offset, const Bytes& bytes);
  // Batched multi-range write: N ranges cost one round trip (delta push).
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges);
  Result<uint64_t> Append(const std::string& key, const Bytes& bytes);
  Status Delete(const std::string& key);
  Result<bool> Exists(const std::string& key);
  Result<uint64_t> Size(const std::string& key);

  Result<bool> TryLockRead(const std::string& key);
  Result<bool> TryLockWrite(const std::string& key);
  Status UnlockRead(const std::string& key);
  Status UnlockWrite(const std::string& key);

  Result<bool> SetAdd(const std::string& key, const std::string& member);
  Result<bool> SetRemove(const std::string& key, const std::string& member);
  Result<std::vector<std::string>> SetMembers(const std::string& key);

  const std::string& source() const { return source_; }

 private:
  Result<Bytes> Invoke(KvsOp op, const std::function<void(ByteWriter&)>& write_args);

  InProcNetwork* network_;
  std::string source_;
  std::string server_;
};

}  // namespace faasm

#endif  // FAASM_KVS_KVS_CLIENT_H_
