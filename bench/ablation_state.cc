// Ablations on the two-tier state design (DESIGN.md §3):
//   1. AsyncArray push interval (the VectorAsync consistency/traffic knob of
//      Listing 1): network bytes vs interval for SGD.
//   2. Chunked vs full pulls (state chunks, Fig. 4): bytes moved when workers
//      touch column slices of a large matrix.
#include "bench/bench_util.h"
#include "runtime/cluster.h"
#include "state/ddo.h"
#include "workloads/sgd.h"

namespace faasm {
namespace {

void PushIntervalAblation() {
  PrintHeader("Ablation 1: AsyncArray push interval (SGD weight vector)");
  std::printf("%14s | %14s %12s %14s\n", "push interval", "network (MB)", "time (ms)",
              "final loss");
  for (uint32_t interval : {1u, 4u, 16u, 64u, 256u}) {
    ClusterConfig cluster_config;
    cluster_config.hosts = 4;
    FaasmCluster cluster(cluster_config);
    SgdConfig config;
    config.n_examples = 4096;
    config.n_features = 1024;
    config.nnz_per_example = 16;
    config.n_workers = 8;
    config.n_epochs = 2;
    config.push_interval = interval;
    SeedSgdDataset(cluster.kvs(), config);
    (void)RegisterSgdFunctions(cluster.registry());
    double loss = 0;
    double seconds = 0;
    cluster.Run([&](Frontend& frontend) {
      const TimeNs start = cluster.clock().Now();
      auto result = RunSgdTraining(frontend, config);
      loss = result.ok() ? result.value() : -1;
      seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
    });
    std::printf("%14u | %14.1f %12.0f %14.4f\n", interval,
                static_cast<double>(cluster.network_bytes()) / 1e6, seconds * 1e3, loss);
  }
  std::printf("(larger intervals trade weight freshness for traffic; HOGWILD tolerates it)\n");
}

void ChunkAblation() {
  PrintHeader("Ablation 2: chunked vs full state pulls (Fig. 4 state chunks)");
  // One big matrix; 16 workers each touch a 1/16 column slice.
  const size_t rows = 256;
  const size_t cols = 4096;
  const size_t matrix_bytes = rows * cols * sizeof(double);

  for (bool chunked : {true, false}) {
    ClusterConfig cluster_config;
    cluster_config.hosts = 4;
    FaasmCluster cluster(cluster_config);
    std::vector<double> matrix(rows * cols, 1.0);
    const auto* p = reinterpret_cast<const uint8_t*>(matrix.data());
    cluster.kvs().Set("big", Bytes(p, p + matrix_bytes));

    (void)cluster.registry().RegisterNative(
        "touch", [rows, cols, chunked](InvocationContext& ctx) {
          ByteReader reader(ctx.Input());
          auto slice = reader.Get<uint32_t>();
          ReadOnlyMatrix<double> m(&ctx.state(), "big", rows, cols);
          if (!m.Init().ok()) {
            return 1;
          }
          const size_t per_slice = cols / 16;
          Status pull = chunked
                            ? m.PullColumns(slice.value() * per_slice,
                                            (slice.value() + 1) * per_slice)
                            : m.PullColumns(0, cols);  // full-value pull
          if (!pull.ok()) {
            return 2;
          }
          double sum = 0;
          for (size_t c = slice.value() * per_slice; c < (slice.value() + 1) * per_slice; ++c) {
            sum += m.At(0, c);
          }
          return sum > 0 ? 0 : 3;
        });

    cluster.Run([&](Frontend& frontend) {
      std::vector<uint64_t> ids;
      for (uint32_t slice = 0; slice < 16; ++slice) {
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(slice);
        auto id = frontend.Submit("touch", std::move(input));
        if (id.ok()) {
          ids.push_back(id.value());
        }
      }
      for (uint64_t id : ids) {
        (void)frontend.Await(id);
      }
    });
    std::printf("%-18s network %8.1f MB  (matrix is %.1f MB; 4 hosts)\n",
                chunked ? "chunked pulls:" : "full pulls:",
                static_cast<double>(cluster.network_bytes()) / 1e6, matrix_bytes / 1e6);
  }
  std::printf("(chunked pulls replicate only the columns a worker touches)\n");
}

}  // namespace
}  // namespace faasm

int main() {
  faasm::PushIntervalAblation();
  faasm::ChunkAblation();
  return 0;
}
