#include "wasm/decoder.h"

#include "wasm/leb128.h"
#include "wasm/opcodes.h"

namespace faasm::wasm {

namespace {

constexpr uint8_t kSectionCustom = 0;
constexpr uint8_t kSectionType = 1;
constexpr uint8_t kSectionImport = 2;
constexpr uint8_t kSectionFunction = 3;
constexpr uint8_t kSectionTable = 4;
constexpr uint8_t kSectionMemory = 5;
constexpr uint8_t kSectionGlobal = 6;
constexpr uint8_t kSectionExport = 7;
constexpr uint8_t kSectionStart = 8;
constexpr uint8_t kSectionElement = 9;
constexpr uint8_t kSectionCode = 10;
constexpr uint8_t kSectionData = 11;

Result<ValType> ReadValType(ByteCursor& cursor) {
  auto byte = cursor.ReadByte();
  if (!byte.ok()) {
    return byte.status();
  }
  if (!IsValidValType(byte.value())) {
    return InvalidArgument("invalid value type byte");
  }
  return static_cast<ValType>(byte.value());
}

Result<Limits> ReadLimits(ByteCursor& cursor) {
  auto flags = cursor.ReadByte();
  if (!flags.ok()) {
    return flags.status();
  }
  if (flags.value() > 1) {
    return InvalidArgument("invalid limits flags");
  }
  Limits limits;
  auto min = cursor.ReadVarU32();
  if (!min.ok()) {
    return min.status();
  }
  limits.min = min.value();
  if (flags.value() == 1) {
    auto max = cursor.ReadVarU32();
    if (!max.ok()) {
      return max.status();
    }
    limits.has_max = true;
    limits.max = max.value();
    if (limits.max < limits.min) {
      return InvalidArgument("limits: max < min");
    }
  }
  return limits;
}

// Constant initialiser expressions: `<t.const v> end` (MVP subset).
Result<Value> ReadConstExpr(ByteCursor& cursor, ValType expected) {
  auto op = cursor.ReadByte();
  if (!op.ok()) {
    return op.status();
  }
  Value value{};
  switch (static_cast<Op>(op.value())) {
    case Op::kI32Const: {
      if (expected != ValType::kI32) {
        return InvalidArgument("init expr type mismatch");
      }
      auto v = cursor.ReadVarS32();
      if (!v.ok()) {
        return v.status();
      }
      value = MakeI32(static_cast<uint32_t>(v.value()));
      break;
    }
    case Op::kI64Const: {
      if (expected != ValType::kI64) {
        return InvalidArgument("init expr type mismatch");
      }
      auto v = cursor.ReadVarS64();
      if (!v.ok()) {
        return v.status();
      }
      value = MakeI64(static_cast<uint64_t>(v.value()));
      break;
    }
    case Op::kF32Const: {
      if (expected != ValType::kF32) {
        return InvalidArgument("init expr type mismatch");
      }
      float f;
      FAASM_RETURN_IF_ERROR(cursor.ReadRaw(&f, 4));
      value = MakeF32(f);
      break;
    }
    case Op::kF64Const: {
      if (expected != ValType::kF64) {
        return InvalidArgument("init expr type mismatch");
      }
      double d;
      FAASM_RETURN_IF_ERROR(cursor.ReadRaw(&d, 8));
      value = MakeF64(d);
      break;
    }
    default:
      return Unimplemented("unsupported init expression opcode");
  }
  auto end = cursor.ReadByte();
  if (!end.ok()) {
    return end.status();
  }
  if (static_cast<Op>(end.value()) != Op::kEnd) {
    return InvalidArgument("init expression missing end");
  }
  return value;
}

Status DecodeTypeSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto tag = cursor.ReadByte();
    if (!tag.ok()) {
      return tag.status();
    }
    if (tag.value() != kFuncTypeTag) {
      return InvalidArgument("type section: expected functype tag 0x60");
    }
    FuncType type;
    auto n_params = cursor.ReadVarU32();
    if (!n_params.ok()) {
      return n_params.status();
    }
    for (uint32_t p = 0; p < n_params.value(); ++p) {
      FAASM_ASSIGN_OR_RETURN(ValType t, ReadValType(cursor));
      type.params.push_back(t);
    }
    auto n_results = cursor.ReadVarU32();
    if (!n_results.ok()) {
      return n_results.status();
    }
    if (n_results.value() > 1) {
      return Unimplemented("multi-value results not supported (MVP)");
    }
    for (uint32_t r = 0; r < n_results.value(); ++r) {
      FAASM_ASSIGN_OR_RETURN(ValType t, ReadValType(cursor));
      type.results.push_back(t);
    }
    module.types.push_back(std::move(type));
  }
  return OkStatus();
}

Status DecodeImportSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    Import import;
    FAASM_ASSIGN_OR_RETURN(import.module, cursor.ReadName());
    FAASM_ASSIGN_OR_RETURN(import.name, cursor.ReadName());
    auto kind = cursor.ReadByte();
    if (!kind.ok()) {
      return kind.status();
    }
    import.kind = static_cast<ExternalKind>(kind.value());
    if (import.kind != ExternalKind::kFunction) {
      return Unimplemented("only function imports are supported");
    }
    auto type_index = cursor.ReadVarU32();
    if (!type_index.ok()) {
      return type_index.status();
    }
    if (type_index.value() >= module.types.size()) {
      return InvalidArgument("import references unknown type");
    }
    import.type_index = type_index.value();
    module.imports.push_back(std::move(import));
  }
  return OkStatus();
}

Status DecodeFunctionSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto type_index = cursor.ReadVarU32();
    if (!type_index.ok()) {
      return type_index.status();
    }
    if (type_index.value() >= module.types.size()) {
      return InvalidArgument("function references unknown type");
    }
    module.function_types.push_back(type_index.value());
  }
  return OkStatus();
}

Status DecodeTableSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  if (count.value() > 1) {
    return InvalidArgument("at most one table (MVP)");
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto elem_type = cursor.ReadByte();
    if (!elem_type.ok()) {
      return elem_type.status();
    }
    if (elem_type.value() != kFuncRefTag) {
      return InvalidArgument("table element type must be funcref");
    }
    FAASM_ASSIGN_OR_RETURN(Limits limits, ReadLimits(cursor));
    module.table = limits;
  }
  return OkStatus();
}

Status DecodeMemorySection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  if (count.value() > 1) {
    return InvalidArgument("at most one memory (MVP)");
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    FAASM_ASSIGN_OR_RETURN(Limits limits, ReadLimits(cursor));
    module.memory = limits;
  }
  return OkStatus();
}

Status DecodeGlobalSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    GlobalDef global;
    FAASM_ASSIGN_OR_RETURN(global.type, ReadValType(cursor));
    auto mutability = cursor.ReadByte();
    if (!mutability.ok()) {
      return mutability.status();
    }
    if (mutability.value() > 1) {
      return InvalidArgument("invalid global mutability");
    }
    global.mutable_ = mutability.value() == 1;
    FAASM_ASSIGN_OR_RETURN(global.init, ReadConstExpr(cursor, global.type));
    module.globals.push_back(global);
  }
  return OkStatus();
}

Status DecodeExportSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    Export exp;
    FAASM_ASSIGN_OR_RETURN(exp.name, cursor.ReadName());
    auto kind = cursor.ReadByte();
    if (!kind.ok()) {
      return kind.status();
    }
    if (kind.value() > 3) {
      return InvalidArgument("invalid export kind");
    }
    exp.kind = static_cast<ExternalKind>(kind.value());
    auto index = cursor.ReadVarU32();
    if (!index.ok()) {
      return index.status();
    }
    exp.index = index.value();
    switch (exp.kind) {
      case ExternalKind::kFunction:
        if (exp.index >= module.num_functions()) {
          return InvalidArgument("export of unknown function");
        }
        break;
      case ExternalKind::kMemory:
        if (!module.memory.has_value() || exp.index != 0) {
          return InvalidArgument("export of unknown memory");
        }
        break;
      case ExternalKind::kTable:
        if (!module.table.has_value() || exp.index != 0) {
          return InvalidArgument("export of unknown table");
        }
        break;
      case ExternalKind::kGlobal:
        if (exp.index >= module.globals.size()) {
          return InvalidArgument("export of unknown global");
        }
        break;
    }
    module.exports.push_back(std::move(exp));
  }
  return OkStatus();
}

Status DecodeElementSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    ElementSegment segment;
    auto table_index = cursor.ReadVarU32();
    if (!table_index.ok()) {
      return table_index.status();
    }
    segment.table_index = table_index.value();
    if (segment.table_index != 0 || !module.table.has_value()) {
      return InvalidArgument("element segment references unknown table");
    }
    FAASM_ASSIGN_OR_RETURN(Value offset, ReadConstExpr(cursor, ValType::kI32));
    segment.offset = offset.i32;
    auto n = cursor.ReadVarU32();
    if (!n.ok()) {
      return n.status();
    }
    for (uint32_t j = 0; j < n.value(); ++j) {
      auto func_index = cursor.ReadVarU32();
      if (!func_index.ok()) {
        return func_index.status();
      }
      if (func_index.value() >= module.num_functions()) {
        return InvalidArgument("element segment references unknown function");
      }
      segment.func_indices.push_back(func_index.value());
    }
    module.elements.push_back(std::move(segment));
  }
  return OkStatus();
}

Status DecodeCodeSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  if (count.value() != module.function_types.size()) {
    return InvalidArgument("code section count != function section count");
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto body_size = cursor.ReadVarU32();
    if (!body_size.ok()) {
      return body_size.status();
    }
    if (cursor.remaining() < body_size.value()) {
      return OutOfRange("function body extends past end of binary");
    }
    const size_t body_end = cursor.position() + body_size.value();

    FunctionBody body;
    auto n_local_runs = cursor.ReadVarU32();
    if (!n_local_runs.ok()) {
      return n_local_runs.status();
    }
    uint64_t total_locals = 0;
    for (uint32_t r = 0; r < n_local_runs.value(); ++r) {
      auto run_count = cursor.ReadVarU32();
      if (!run_count.ok()) {
        return run_count.status();
      }
      FAASM_ASSIGN_OR_RETURN(ValType t, ReadValType(cursor));
      total_locals += run_count.value();
      if (total_locals > 50000) {
        return ResourceExhausted("too many locals");
      }
      body.locals.emplace_back(run_count.value(), t);
    }
    if (cursor.position() > body_end) {
      return OutOfRange("locals extend past declared body size");
    }
    const size_t code_len = body_end - cursor.position();
    body.code.assign(cursor.current(), cursor.current() + code_len);
    FAASM_RETURN_IF_ERROR(cursor.Skip(code_len));
    module.bodies.push_back(std::move(body));
  }
  return OkStatus();
}

Status DecodeDataSection(ByteCursor& cursor, Module& module) {
  auto count = cursor.ReadVarU32();
  if (!count.ok()) {
    return count.status();
  }
  for (uint32_t i = 0; i < count.value(); ++i) {
    DataSegment segment;
    auto memory_index = cursor.ReadVarU32();
    if (!memory_index.ok()) {
      return memory_index.status();
    }
    segment.memory_index = memory_index.value();
    if (segment.memory_index != 0 || !module.memory.has_value()) {
      return InvalidArgument("data segment references unknown memory");
    }
    FAASM_ASSIGN_OR_RETURN(Value offset, ReadConstExpr(cursor, ValType::kI32));
    segment.offset = offset.i32;
    auto n = cursor.ReadVarU32();
    if (!n.ok()) {
      return n.status();
    }
    if (cursor.remaining() < n.value()) {
      return OutOfRange("data segment extends past end of binary");
    }
    segment.bytes.assign(cursor.current(), cursor.current() + n.value());
    FAASM_RETURN_IF_ERROR(cursor.Skip(n.value()));
    module.data.push_back(std::move(segment));
  }
  return OkStatus();
}

}  // namespace

Result<Module> DecodeModule(const uint8_t* data, size_t size) {
  ByteCursor cursor(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  FAASM_RETURN_IF_ERROR(cursor.ReadRaw(&magic, 4));
  FAASM_RETURN_IF_ERROR(cursor.ReadRaw(&version, 4));
  if (magic != kWasmMagic) {
    return InvalidArgument("bad wasm magic number");
  }
  if (version != kWasmVersion) {
    return InvalidArgument("unsupported wasm version");
  }

  Module module;
  int last_section = 0;
  while (!cursor.done()) {
    auto section_id = cursor.ReadByte();
    if (!section_id.ok()) {
      return section_id.status();
    }
    auto section_size = cursor.ReadVarU32();
    if (!section_size.ok()) {
      return section_size.status();
    }
    if (cursor.remaining() < section_size.value()) {
      return OutOfRange("section extends past end of binary");
    }
    const size_t section_end = cursor.position() + section_size.value();

    if (section_id.value() != kSectionCustom) {
      if (section_id.value() <= last_section) {
        return InvalidArgument("sections out of order or duplicated");
      }
      last_section = section_id.value();
    }

    Status status = OkStatus();
    switch (section_id.value()) {
      case kSectionCustom: {
        CustomSection custom;
        auto name = cursor.ReadName();
        if (!name.ok()) {
          return name.status();
        }
        custom.name = name.value();
        const size_t payload = section_end - cursor.position();
        custom.bytes.assign(cursor.current(), cursor.current() + payload);
        status = cursor.Skip(payload);
        module.custom_sections.push_back(std::move(custom));
        break;
      }
      case kSectionType:
        status = DecodeTypeSection(cursor, module);
        break;
      case kSectionImport:
        status = DecodeImportSection(cursor, module);
        break;
      case kSectionFunction:
        status = DecodeFunctionSection(cursor, module);
        break;
      case kSectionTable:
        status = DecodeTableSection(cursor, module);
        break;
      case kSectionMemory:
        status = DecodeMemorySection(cursor, module);
        break;
      case kSectionGlobal:
        status = DecodeGlobalSection(cursor, module);
        break;
      case kSectionExport:
        status = DecodeExportSection(cursor, module);
        break;
      case kSectionStart: {
        auto index = cursor.ReadVarU32();
        if (!index.ok()) {
          return index.status();
        }
        if (index.value() >= module.num_functions()) {
          return InvalidArgument("start function index out of range");
        }
        module.start_function = index.value();
        break;
      }
      case kSectionElement:
        status = DecodeElementSection(cursor, module);
        break;
      case kSectionCode:
        status = DecodeCodeSection(cursor, module);
        break;
      case kSectionData:
        status = DecodeDataSection(cursor, module);
        break;
      default:
        return InvalidArgument("unknown section id");
    }
    FAASM_RETURN_IF_ERROR(status);
    if (cursor.position() != section_end) {
      return InvalidArgument("section size mismatch");
    }
  }

  if (module.function_types.size() != module.bodies.size()) {
    return InvalidArgument("function declarations without bodies");
  }
  return module;
}

Result<Module> DecodeModule(const Bytes& binary) { return DecodeModule(binary.data(), binary.size()); }

}  // namespace faasm::wasm
