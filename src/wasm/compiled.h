// Preprocessed ("code generated") form of a validated module. Mirrors the
// paper's §3.4 pipeline: untrusted binary -> validation -> machine-executable
// object. Compiled modules are immutable and shared by all Faaslets running
// the same function, which is what keeps per-Faaslet footprints in the
// hundreds-of-KB range (Table 3).
#ifndef FAASM_WASM_COMPILED_H_
#define FAASM_WASM_COMPILED_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "wasm/module.h"
#include "wasm/opcodes.h"

namespace faasm::wasm {

// One preprocessed instruction. Branches carry resolved target pcs and the
// operand-stack unwind info computed by the validator, so the interpreter
// never re-derives control structure at run time.
struct Instr {
  uint16_t op = 0;   // Op (0x00-0xFF) or IOp (>= 0x100)
  uint32_t a = 0;    // branch target pc / function index / local index / ...
  uint32_t b = 0;    // branch arity / ...
  uint64_t imm = 0;  // constant bits / memory offset / branch unwind height
};

struct BrTableTarget {
  uint32_t pc = 0;
  uint32_t height = 0;  // operand stack height to unwind to
};

struct BrTableData {
  std::vector<BrTableTarget> targets;  // last entry is the default label
  uint32_t arity = 0;
};

struct CompiledFunction {
  uint32_t type_index = 0;
  uint32_t param_count = 0;
  uint32_t local_count = 0;   // excluding params
  uint32_t result_arity = 0;  // 0 or 1 (MVP)
  uint32_t max_operand_height = 0;
  std::vector<ValType> locals;  // expanded, excluding params
  std::vector<Instr> code;
  std::vector<BrTableData> br_tables;
  // retired_prefix[k] = wire instructions represented by code[0..k): the
  // prefix sum of per-instruction retire weights (a fused superinstruction
  // counts for every instruction it replaced). The interpreter charges fuel
  // and instructions_retired from deltas of this array at block boundaries,
  // which keeps both exact and identical across dispatch/fusion tiers.
  // Size = code.size() + 1.
  std::vector<uint32_t> retired_prefix;
};

struct CompiledModule {
  Module module;  // decoded module (types, imports, exports, globals, data)
  std::vector<CompiledFunction> functions;  // defined functions only

  const CompiledFunction& function(uint32_t func_index) const {
    return functions[func_index - module.num_imported_functions()];
  }
  bool is_import(uint32_t func_index) const {
    return func_index < module.num_imported_functions();
  }
};

struct CompileOptions {
  // Run the superinstruction fusion peephole over each compiled body
  // (opcodes.h kFuse*). Off = the unfused ablation baseline; semantics,
  // traps and retired counts are identical either way.
  bool fuse_superinstructions = true;
};

// Number of wire instructions a preprocessed opcode retires: the fused
// superinstructions report the length of the run they replaced, everything
// else reports 1.
uint32_t InstrRetireWeight(uint16_t op);

// Validates every function body and produces preprocessed code. Returns an
// error for any module that violates the WebAssembly validation rules; such
// modules are rejected at upload time and never reach a Faaslet.
Result<std::shared_ptr<const CompiledModule>> CompileModule(Module module,
                                                            const CompileOptions& options = {});

}  // namespace faasm::wasm

#endif  // FAASM_WASM_COMPILED_H_
