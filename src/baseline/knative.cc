#include "baseline/knative.h"

#include <chrono>
#include <thread>

#include "common/log.h"

namespace faasm {

namespace {
Bytes EncodeDispatch(uint64_t id, const std::string& function, const Bytes& input) {
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint64_t>(id);
  writer.PutString(function);
  writer.PutBytes(input);
  return out;
}
}  // namespace

// --- KnativeInstance -------------------------------------------------------------

KnativeInstance::KnativeInstance(HostConfig config, ContainerModel model, SimExecutor* executor,
                                 InProcNetwork* network, FunctionRegistry* registry,
                                 CallTable* calls, KnativeCluster* cluster)
    : config_(std::move(config)),
      model_(model),
      executor_(executor),
      network_(network),
      registry_(registry),
      calls_(calls),
      cluster_(cluster),
      kvs_(network, config_.name),
      memory_(&executor->clock(), config_.memory_bytes),
      cpu_(&executor->clock(), config_.cores) {}

KnativeInstance::~KnativeInstance() { Stop(); }

void KnativeInstance::Start() {
  if (started_.exchange(true)) {
    return;
  }
  network_->RegisterEndpoint(config_.name, [](const Bytes&) { return Bytes{}; });
  executor_->Spawn([this] { DispatchLoop(); });
}

void KnativeInstance::Stop() { stop_.store(true); }

void KnativeInstance::Retire() {
  Stop();
  network_->UnregisterEndpoint(config_.name);
  // The host's containers (and their private state copies) die with it:
  // return their memory so a removed host stops accruing billable
  // GB-seconds for the rest of the run.
  std::lock_guard<std::mutex> guard(pools_mutex_);
  for (auto& [function, containers] : idle_) {
    for (const auto& container : containers) {
      size_t tier_bytes = 0;
      if (auto it = accounted_tier_bytes_.find(container.get());
          it != accounted_tier_bytes_.end()) {
        tier_bytes = it->second;
      }
      memory_.Release(model_.base_footprint_bytes + tier_bytes);
    }
  }
  idle_.clear();
  accounted_tier_bytes_.clear();
  total_containers_ = 0;
}

void KnativeInstance::DispatchLoop() {
  SimClock& clock = executor_->clock();
  while (!stop_.load()) {
    auto message = network_->Poll(config_.name);
    if (!message.has_value()) {
      clock.SleepFor(200 * kMicrosecond);
      continue;
    }
    ByteReader reader(*message);
    auto id = reader.Get<uint64_t>();
    auto function = reader.GetString();
    auto input = reader.GetBytes();
    if (!id.ok() || !function.ok() || !input.ok()) {
      LOG_ERROR << config_.name << ": bad dispatch message";
      continue;
    }
    ExecuteLocal(id.value(), function.value(), std::move(input).value());
  }
}

Result<std::unique_ptr<Container>> KnativeInstance::AcquireContainer(const std::string& function,
                                                                     bool* cold) {
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    auto it = idle_.find(function);
    if (it != idle_.end() && !it->second.empty()) {
      auto container = std::move(it->second.back());
      it->second.pop_back();
      *cold = false;
      return container;
    }
    if (total_containers_ >= model_.max_containers_per_host) {
      return ResourceExhausted("host container limit reached");
    }
  }
  *cold = true;
  cold_starts_.fetch_add(1);

  FAASM_ASSIGN_OR_RETURN(FunctionSpec spec, registry_->Lookup(function));

  // Container memory is reserved up front — this is what drives the baseline
  // out of memory at high parallelism in Fig. 6.
  FAASM_RETURN_IF_ERROR(memory_.Allocate(model_.base_footprint_bytes));

  // The container daemon creates with limited parallelism.
  SimClock& clock = executor_->clock();
  clock.WaitFor(
      [this] {
        int current = concurrent_cold_starts_.load();
        while (current < model_.max_concurrent_cold_starts) {
          if (concurrent_cold_starts_.compare_exchange_weak(current, current + 1)) {
            return true;
          }
        }
        return false;
      },
      1 * kMillisecond);

  const TimeNs boot_ns =
      spec.simulated_init_ns > 0 ? model_.python_cold_start_ns : model_.cold_start_ns;
  clock.SleepFor(boot_ns);
  concurrent_cold_starts_.fetch_sub(1);

  Container::Env env;
  env.clock = &clock;
  env.kvs = &kvs_;
  env.cpu = &cpu_;
  env.rng_seed = HashBytes(reinterpret_cast<const uint8_t*>(function.data()), function.size());
  env.chain = [this](const std::string& fn, Bytes in) {
    return cluster_->Submit(config_.name, fn, std::move(in));
  };
  env.await = [this](uint64_t id) { return cluster_->Await(config_.name, id); };
  env.get_output = [this](uint64_t id) { return cluster_->Output(id); };

  auto container = std::make_unique<Container>(spec, std::move(env));
  if (spec.native_init) {
    FAASM_RETURN_IF_ERROR(spec.native_init(*container));
  }
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    ++total_containers_;
  }
  return container;
}

void KnativeInstance::ReleaseContainer(std::unique_ptr<Container> container) {
  std::lock_guard<std::mutex> guard(pools_mutex_);
  idle_[container->function()].push_back(std::move(container));
}

void KnativeInstance::ExecuteLocal(uint64_t call_id, const std::string& function, Bytes input) {
  executor_->Spawn([this, call_id, function, input = std::move(input)]() mutable {
    bool cold = false;
    auto container = AcquireContainer(function, &cold);
    if (!container.ok()) {
      (void)calls_->Fail(call_id, container.status().ToString());
      cluster_->NotifyDone(function, host_index_);
      return;
    }
    (void)calls_->MarkRunning(call_id, config_.name, cold);

    Container& c = *container.value();
    Result<int> code = 0;
    {
      HostCpuModel::Running running(cpu_);
      code = c.Execute(std::move(input));
    }
    if (code.ok()) {
      (void)calls_->Complete(call_id, code.value(), c.TakeOutput());
    } else {
      (void)calls_->Fail(call_id, code.status().ToString());
    }

    // Account growth of this container's private state copies. When the host
    // runs out of memory the call still completed, but subsequent cold starts
    // will fail — the Fig. 6 OOM behaviour.
    {
      std::lock_guard<std::mutex> guard(pools_mutex_);
      size_t& accounted = accounted_tier_bytes_[&c];
      const size_t now_bytes = c.tier_bytes();
      if (now_bytes > accounted) {
        Status status = memory_.Allocate(now_bytes - accounted);
        if (!status.ok()) {
          LOG_WARN << config_.name << ": containers exceed host memory";
        }
        accounted = now_bytes;
      }
    }
    // Containers are recycled without reset (warm reuse).
    ReleaseContainer(std::move(container).value());
    cluster_->NotifyDone(function, host_index_);
  });
}

size_t KnativeInstance::container_count() const {
  std::lock_guard<std::mutex> guard(pools_mutex_);
  return static_cast<size_t>(total_containers_);
}

// --- KnativeCluster ----------------------------------------------------------------

KnativeCluster::KnativeCluster(ClusterConfig cluster_config, ContainerModel model)
    : config_(cluster_config),
      model_(model),
      network_(std::make_unique<InProcNetwork>(&executor_.clock(), cluster_config.network)),
      kvs_server_(std::make_unique<KvsServer>(&kvs_, network_.get())),
      calls_(&executor_.clock()) {
  network_->RegisterEndpoint("ingress", [](const Bytes&) { return Bytes{}; });
  for (int i = 0; i < cluster_config.hosts; ++i) {
    (void)AddHost();
  }
}

KnativeCluster::~KnativeCluster() { Shutdown(); }

Result<std::string> KnativeCluster::AddHost() {
  HostConfig host_config;
  host_config.name = "kn-host-" + std::to_string(next_host_index_++);
  host_config.cores = config_.cores_per_host;
  host_config.memory_bytes = config_.host_memory_bytes;
  host_config.max_concurrent_calls = config_.max_concurrent_per_host;
  auto host = std::make_unique<KnativeInstance>(host_config, model_, &executor_,
                                                network_.get(), &registry_, &calls_, this);
  KnativeInstance* started = host.get();
  {
    // hosts_ is read by RouteCall/Submit on instance threads; the push_back
    // may reallocate, so it must happen under the routing lock.
    std::lock_guard<std::mutex> guard(routing_mutex_);
    host->host_index_ = hosts_.size();
    hosts_.push_back(std::move(host));
  }
  started->Start();
  // Baseline no-op tier: the central KVS is untouched — new hosts only add
  // compute (and cold starts), never state mastership.
  return host_config.name;
}

int KnativeCluster::HostLoadLocked(size_t index) const {
  int load = 0;
  for (const auto& [function, pods] : in_flight_) {
    if (auto it = pods.find(index); it != pods.end()) {
      load += it->second;
    }
  }
  return load;
}

Status KnativeCluster::RemoveHost(const std::string& name) {
  KnativeInstance* host = nullptr;
  size_t index = SIZE_MAX;
  {
    std::lock_guard<std::mutex> guard(routing_mutex_);
    for (size_t i = 0; i < hosts_.size(); ++i) {
      if (hosts_[i]->name() == name && retired_.count(i) == 0) {
        host = hosts_[i].get();
        index = i;
        break;
      }
    }
    if (host == nullptr) {
      return NotFound("knative: no active host named '" + name + "'");
    }
    if (hosts_.size() - retired_.size() <= 1) {
      return FailedPrecondition("knative: cannot remove the last host");
    }
    // From here the router never places a pod on this host again.
    retired_.insert(index);
  }
  // Drain: in-flight calls finish and the dispatch mailbox empties.
  executor_.clock().WaitFor([&] {
    const size_t pending = network_->PendingCount(name);
    std::lock_guard<std::mutex> guard(routing_mutex_);
    return pending == 0 && HostLoadLocked(index) == 0;
  });
  host->Retire();
  return OkStatus();
}

std::string KnativeCluster::RouteCall(const std::string& function) {
  std::lock_guard<std::mutex> guard(routing_mutex_);
  auto& pods = in_flight_[function];
  // Least-loaded existing pod host (retired hosts never receive new work;
  // their pods die with them).
  size_t best = SIZE_MAX;
  int best_load = INT32_MAX;
  size_t active_pods = 0;
  for (const auto& [host, load] : pods) {
    if (retired_.count(host) > 0) {
      continue;
    }
    ++active_pods;
    if (load < best_load) {
      best = host;
      best_load = load;
    }
  }
  // Scale out when there is no pod yet, or every pod is at/above the target
  // concurrency of 1 and another (active) host is available.
  if (best == SIZE_MAX || (best_load >= 1 && active_pods < hosts_.size() - retired_.size())) {
    for (size_t host = 0; host < hosts_.size(); ++host) {
      if (pods.count(host) == 0 && retired_.count(host) == 0) {
        best = host;
        break;
      }
    }
  }
  pods[best] += 1;
  return hosts_[best]->name();  // resolved under the lock: hosts_ may grow
}

void KnativeCluster::NotifyDone(const std::string& function, size_t host_index) {
  std::lock_guard<std::mutex> guard(routing_mutex_);
  in_flight_[function][host_index] -= 1;
}

void KnativeCluster::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  for (auto& host : hosts_) {
    host->Stop();
  }
  executor_.JoinAll();
}

Result<uint64_t> KnativeCluster::Submit(const std::string& source, const std::string& function,
                                        Bytes input) {
  if (!registry_.Contains(function)) {
    return NotFound("no function named '" + function + "'");
  }
  // HTTP request to the ingress: envelope + body, plus protocol latency.
  Bytes envelope(model_.http_envelope_bytes);
  Bytes request = input;
  request.insert(request.end(), envelope.begin(), envelope.end());
  auto response = network_->Call(source, "ingress", request);
  if (!response.ok()) {
    return response.status();
  }
  executor_.clock().SleepFor(model_.http_overhead_ns);

  const uint64_t id = calls_.Create(function, Bytes{});
  // Knative-style routing: the function's service sends the request to the
  // least-loaded pod, scaling out when all pods are busy. RouteCall hands
  // back the host NAME, resolved under the routing lock (hosts_ may be
  // growing concurrently).
  FAASM_RETURN_IF_ERROR(
      network_->Send("ingress", RouteCall(function), EncodeDispatch(id, function, input)));
  return id;
}

Result<int> KnativeCluster::Await(const std::string& source, uint64_t call_id) {
  SimClock& clock = executor_.clock();
  const Bytes poll(model_.await_poll_bytes / 2);
  while (!calls_.IsFinished(call_id)) {
    // Provider-API result polling over HTTP.
    auto response = network_->Call(source, "ingress", poll);
    if (!response.ok()) {
      return response.status();
    }
    clock.SleepFor(model_.await_poll_interval_ns);
  }
  FAASM_ASSIGN_OR_RETURN(CallRecord record, calls_.Get(call_id));
  if (record.state == CallState::kFailed) {
    return Internal("call #" + std::to_string(call_id) + " failed: " + record.error);
  }
  return record.return_code;
}

void KnativeCluster::Run(const std::function<void(Client&)>& driver) {
  std::atomic<bool> done{false};
  executor_.Spawn([this, &driver, &done] {
    Client client{this};
    driver(client);
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

double KnativeCluster::billable_gb_seconds() const {
  double total = 0;
  for (const auto& host : hosts_) {
    const KnativeInstance& instance = *host;
    total += instance.memory_accountant().GbSeconds();
  }
  return total;
}

size_t KnativeCluster::cold_start_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->cold_start_count();
  }
  return count;
}

size_t KnativeCluster::failed_call_count() const {
  size_t count = 0;
  for (const CallRecord& record : calls_.FinishedRecords()) {
    count += record.state == CallState::kFailed ? 1 : 0;
  }
  return count;
}

}  // namespace faasm
