// Binary encoder: Module -> wasm bytes. Together with the decoder this gives
// full round-trip capability, which the upload service and the cross-host
// Proto-Faaslet path rely on, and which the tests exercise heavily.
#ifndef FAASM_WASM_ENCODER_H_
#define FAASM_WASM_ENCODER_H_

#include "common/bytes.h"
#include "wasm/module.h"

namespace faasm::wasm {

Bytes EncodeModule(const Module& module);

}  // namespace faasm::wasm

#endif  // FAASM_WASM_ENCODER_H_
