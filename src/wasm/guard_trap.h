// Scoped SIGSEGV/SIGBUS recovery for the guard-page bounds tier.
//
// LinearMemory reserves the full u32-address + u32-static-offset range
// (8 GiB + redzone) with only the committed prefix mapped readable/writable,
// so an interpreter tier that skips inline bounds checks can never reach
// memory outside the reservation: a wild guest access faults on a PROT_NONE
// page. GuardTrapScope arms a per-thread recovery window over the
// reservation; the process-wide handler converts a fault inside the active
// window into a siglongjmp back to the dispatch loop's sigsetjmp, where it
// becomes an ordinary TrapKind::kMemoryOutOfBounds. Faults anywhere else
// re-raise with the default disposition and crash as before.
#ifndef FAASM_WASM_GUARD_TRAP_H_
#define FAASM_WASM_GUARD_TRAP_H_

#include <csetjmp>
#include <cstddef>
#include <cstdint>

namespace faasm::wasm {

namespace internal {
// Per-thread stack of armed recovery windows (nested Instance::Run calls via
// host functions push one each). POD so the signal handler can walk it.
struct GuardWindow {
  GuardWindow* prev = nullptr;
  const uint8_t* base = nullptr;
  size_t len = 0;
  sigjmp_buf jump_buffer;
};
}  // namespace internal

// True when the guard-page tier can run in this build. Sanitizer builds
// intercept the intentional guard fault before our handler sees it (ASan
// reports it as a SEGV crash), so they pin the checked tier instead — the CI
// sanitizer lane relies on this downgrade.
bool GuardTrapSupported();

// RAII: installs the process-wide handler on first use and arms this
// thread's recovery window for [base, base + len). The caller must
// sigsetjmp(jump_buffer(), 1) before running unchecked guest code; savemask
// 1 matters, as the handler longjmps with the signal still blocked and the
// restore unblocks it.
class GuardTrapScope {
 public:
  GuardTrapScope(const uint8_t* base, size_t len);
  ~GuardTrapScope();

  GuardTrapScope(const GuardTrapScope&) = delete;
  GuardTrapScope& operator=(const GuardTrapScope&) = delete;

  sigjmp_buf& jump_buffer() { return window_.jump_buffer; }

 private:
  internal::GuardWindow window_;
};

}  // namespace faasm::wasm

#endif  // FAASM_WASM_GUARD_TRAP_H_
