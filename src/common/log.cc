#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace faasm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace log_internal {
void Emit(LogLevel level, const char* file, int line, const std::string& message) {
  std::lock_guard<std::mutex> guard(g_emit_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, message.c_str());
}
}  // namespace log_internal

}  // namespace faasm
