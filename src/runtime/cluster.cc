#include "runtime/cluster.h"

#include <chrono>
#include <thread>

namespace faasm {

FaasmCluster::FaasmCluster(ClusterConfig config)
    : config_(config),
      network_(std::make_unique<InProcNetwork>(&executor_.clock(), config.network)),
      kvs_server_(std::make_unique<KvsServer>(&kvs_, network_.get())),
      calls_(&executor_.clock()) {
  for (int i = 0; i < config.hosts; ++i) {
    HostConfig host_config;
    host_config.name = "host-" + std::to_string(i);
    host_config.cores = config.cores_per_host;
    host_config.memory_bytes = config.host_memory_bytes;
    host_config.max_concurrent_calls = config.max_concurrent_per_host;
    hosts_.push_back(std::make_unique<FaasmInstance>(host_config, &executor_, network_.get(),
                                                     &registry_, &calls_, &files_));
  }
  for (auto& host : hosts_) {
    host->Start();
  }
}

FaasmCluster::~FaasmCluster() { Shutdown(); }

void FaasmCluster::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  for (auto& host : hosts_) {
    host->Stop();
  }
  executor_.JoinAll();
}

void FaasmCluster::Run(const std::function<void(Frontend&)>& driver) {
  std::atomic<bool> done{false};
  executor_.Spawn([this, &driver, &done] {
    Frontend frontend(&hosts_, &calls_);
    driver(frontend);
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

double FaasmCluster::billable_gb_seconds() const {
  double total = 0;
  for (const auto& host : hosts_) {
    total += const_cast<FaasmInstance&>(*host).memory_accountant().GbSeconds();
  }
  return total;
}

size_t FaasmCluster::cold_start_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->cold_start_count();
  }
  return count;
}

size_t FaasmCluster::warm_faaslet_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->warm_faaslet_count();
  }
  return count;
}

}  // namespace faasm
