// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
#ifndef FAASM_BENCH_BENCH_UTIL_H_
#define FAASM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/container_model.h"

namespace faasm {

// Declarative flag table shared by the benchmark mains (the fig10 idiom,
// factored out): every flag is registered once with its help text, the usage
// text is generated from the same table, and any flag that is not in the
// table — or whose value does not parse — fails Parse(). Callers exit
// non-zero on failure, so CI never silently ignores a typoed flag.
//
//   bool tiny = false; int iters = 300; std::string json;
//   FlagTable flags;
//   flags.AddBool("--tiny", &tiny, "smaller sizes and iteration counts");
//   flags.AddInt("--iters", &iters, "creation iterations");
//   flags.AddString("--json", &json, "write the result as JSON");
//   if (!flags.Parse(argc, argv)) return 2;
class FlagTable {
 public:
  // `--name` (no value).
  void AddBool(const char* name, bool* out, const char* help) {
    flags_.push_back({name, std::string(name), help, out, nullptr, nullptr});
  }
  // `--name=<n>`; the whole value must be a (possibly negative) integer.
  void AddInt(const char* name, int* out, const char* help) {
    flags_.push_back({name, std::string(name) + "=<n>", help, nullptr, out, nullptr});
  }
  // `--name <value>` (value is the next argv entry).
  void AddString(const char* name, std::string* out, const char* help) {
    flags_.push_back({name, std::string(name) + " <value>", help, nullptr, nullptr, out});
  }

  bool Parse(int argc, char** argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const Flag* match = nullptr;
      for (const Flag& flag : flags_) {
        if (arg == flag.name || (flag.int_out != nullptr &&
                                 arg.rfind(flag.name + "=", 0) == 0)) {
          match = &flag;
          break;
        }
      }
      if (match == nullptr) {
        std::fprintf(stderr, "%s: unknown or malformed flag '%s'\n", argv[0], arg.c_str());
        PrintUsage(argv[0]);
        return false;
      }
      if (match->bool_out != nullptr) {
        if (arg != match->name) {
          std::fprintf(stderr, "%s: flag '%s' takes no value\n", argv[0], arg.c_str());
          PrintUsage(argv[0]);
          return false;
        }
        *match->bool_out = true;
      } else if (match->int_out != nullptr) {
        const char* value = arg.c_str() + match->name.size();
        if (*value != '=') {
          std::fprintf(stderr, "%s: flag '%s' needs =<n>\n", argv[0], arg.c_str());
          PrintUsage(argv[0]);
          return false;
        }
        ++value;
        char* end = nullptr;
        const long parsed = std::strtol(value, &end, 10);
        if (*value == '\0' || end == nullptr || *end != '\0') {
          std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], arg.c_str());
          PrintUsage(argv[0]);
          return false;
        }
        *match->int_out = static_cast<int>(parsed);
      } else {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: flag '%s' needs a value\n", argv[0], arg.c_str());
          PrintUsage(argv[0]);
          return false;
        }
        *match->string_out = argv[++i];
      }
    }
    return true;
  }

  void PrintUsage(const char* argv0) const {
    std::fprintf(stderr, "usage: %s", argv0);
    for (const Flag& flag : flags_) {
      std::fprintf(stderr, " [%s]", flag.form.c_str());
    }
    std::fprintf(stderr, "\n");
    for (const Flag& flag : flags_) {
      std::fprintf(stderr, "  %-24s %s\n", flag.form.c_str(), flag.help);
    }
  }

 private:
  struct Flag {
    std::string name;
    std::string form;  // name plus value shape, for the usage text
    const char* help;
    bool* bool_out;
    int* int_out;
    std::string* string_out;
  };
  std::vector<Flag> flags_;
};

inline void PrintHeader(const char* title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
}

// Every benchmark that uses the container baseline prints its calibration so
// the substitution (see DESIGN.md) is explicit in the output.
inline void PrintContainerCalibration(const ContainerModel& model) {
  std::printf("[container model calibrated from the paper's measurements:\n");
  std::printf("  cold start %.1f s, python cold start %.1f s, footprint %zu MB,\n",
              model.cold_start_ns / 1e9, model.python_cold_start_ns / 1e9,
              model.base_footprint_bytes / (1024 * 1024));
  std::printf("  http overhead %.1f ms, daemon parallelism %d]\n",
              model.http_overhead_ns / 1e6, model.max_concurrent_cold_starts);
}

}  // namespace faasm

#endif  // FAASM_BENCH_BENCH_UTIL_H_
