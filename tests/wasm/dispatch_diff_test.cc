// Differential test for the guest execution tiers: randomly generated small
// modules run under every combination of
//   dispatch  (switch | threaded)
// × bounds    (checked | guard-page)
// × compile   (fused superinstructions | unfused)
// and must produce identical results, identical trap kinds, and identical
// instructions_retired counts. Retired counts are the strongest check: a
// fused superinstruction must retire exactly the number of wire instructions
// it replaced (compiled.h InstrRetireWeight), and the per-segment fuel
// accounting must flush at the same program points in every tier.
//
// Module generation composes stack-disciplined statement templates (the
// builder's structured helpers keep every module valid by construction) that
// deliberately hit the fusion patterns: local.get pairs feeding binops,
// compare+br_if loop exits, and canonical `i += c` loop increments.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "mem/linear_memory.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/instance.h"

namespace faasm::wasm {
namespace {

struct RunConfig {
  GuestDispatch dispatch;
  GuestBounds bounds;
  bool fused;
  std::string Name() const {
    std::string n = dispatch == GuestDispatch::kThreaded ? "threaded" : "switch";
    n += bounds == GuestBounds::kGuardPage ? "/guard" : "/checked";
    n += fused ? "/fused" : "/unfused";
    return n;
  }
};

std::vector<RunConfig> AllConfigs() {
  std::vector<RunConfig> configs;
  for (auto dispatch : {GuestDispatch::kSwitch, GuestDispatch::kThreaded}) {
    for (auto bounds : {GuestBounds::kChecked, GuestBounds::kGuardPage}) {
      for (bool fused : {true, false}) {
        configs.push_back({dispatch, bounds, fused});
      }
    }
  }
  return configs;
}

// Emits a random function body into `f`: a handful of statements over four
// i32 locals and one page of memory, ending by returning a checksum of the
// locals and two memory words. Some statement mixes divide or access memory
// unmasked, so a subset of generated programs traps — deliberately: trap
// kind and retired-at-trap must also agree across tiers.
void EmitRandomBody(FunctionBuilder& f, Rng& rng, uint32_t param,
                    const std::vector<uint32_t>& locals) {
  const uint32_t n_statements = 3 + static_cast<uint32_t>(rng.NextBelow(6));
  for (uint32_t s = 0; s < n_statements; ++s) {
    const uint32_t a = locals[rng.NextBelow(locals.size())];
    const uint32_t b = locals[rng.NextBelow(locals.size())];
    const uint32_t c = locals[rng.NextBelow(locals.size())];
    switch (rng.NextBelow(8)) {
      case 0: {  // l[a] = l[b] <binop> l[c]  — the GetGetOp fusion shape
        static const Op kBinops[] = {Op::kI32Add, Op::kI32Sub, Op::kI32Mul,
                                     Op::kI32And, Op::kI32Or,  Op::kI32Xor};
        f.LocalGet(b);
        f.LocalGet(c);
        f.Emit(kBinops[rng.NextBelow(6)]);
        f.LocalSet(a);
        break;
      }
      case 1:  // l[a] = l[b] + const  — the GetConstOp fusion shape
        f.LocalGet(b);
        f.I32Const(static_cast<int32_t>(rng.NextBelow(1000)) - 500);
        f.Emit(Op::kI32Add);
        f.LocalSet(a);
        break;
      case 2:  // masked in-bounds store: mem[l[b] & 0xFFF8] = l[c]
        f.LocalGet(b);
        f.I32Const(0xFF8);
        f.Emit(Op::kI32And);
        f.LocalGet(c);
        f.Store(Op::kI32Store, 16);
        break;
      case 3:  // masked in-bounds load — the GetMem/const-fold shapes
        f.LocalGet(b);
        f.I32Const(0xFF8);
        f.Emit(Op::kI32And);
        f.Load(Op::kI32Load, 8);
        f.LocalSet(a);
        break;
      case 4: {  // counted loop with accumulate — LoopGeSLC + IncLocal shapes
        // Distinct roles: the body must not touch the loop counter.
        const size_t base = rng.NextBelow(locals.size());
        const uint32_t i_local = locals[base];
        const uint32_t acc = locals[(base + 1) % locals.size()];
        f.ForConstLimit(i_local, 0, 5 + static_cast<int32_t>(rng.NextBelow(12)),
                        [&] {
                          f.LocalGet(acc);
                          f.LocalGet(i_local);
                          f.Emit(Op::kI32Add);
                          f.LocalSet(acc);
                        });
        break;
      }
      case 5: {  // loop with a local limit — the LoopGeSLL shape
        // Distinct roles: the body must modify neither counter nor limit, or
        // the loop need not terminate.
        const size_t base = rng.NextBelow(locals.size());
        const uint32_t i_local = locals[base];
        const uint32_t limit = locals[(base + 1) % locals.size()];
        const uint32_t acc = locals[(base + 2) % locals.size()];
        f.LocalGet(param);
        f.I32Const(15);
        f.Emit(Op::kI32And);
        f.LocalSet(limit);
        f.ForLocalLimit(i_local, 0, limit, [&] {
          f.LocalGet(acc);
          f.I32Const(3);
          f.Emit(Op::kI32Add);
          f.LocalSet(acc);
        });
        break;
      }
      case 6:  // possibly-trapping division (divide-by-zero when l[c] == 0)
        f.LocalGet(b);
        f.LocalGet(c);
        f.Emit(Op::kI32DivS);
        f.LocalSet(a);
        break;
      default:  // unmasked access: traps OOB when the local grew past a page
        f.LocalGet(b);
        f.Load(Op::kI32Load8U, 0);
        f.LocalSet(a);
        break;
    }
  }
  // Checksum: xor of all locals plus two fixed memory words.
  f.LocalGet(param);
  for (uint32_t l : locals) {
    f.LocalGet(l);
    f.Emit(Op::kI32Xor);
  }
  f.I32Const(16);
  f.Load(Op::kI32Load, 0);
  f.Emit(Op::kI32Xor);
  f.I32Const(0);
  f.Load(Op::kI32Load, 24);
  f.Emit(Op::kI32Xor);
}

Bytes RandomModule(Rng& rng) {
  ModuleBuilder b;
  b.AddMemory(1, 1);
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  std::vector<uint32_t> locals;
  for (int i = 0; i < 4; ++i) {
    locals.push_back(f.AddLocal(ValType::kI32));
  }
  // Seed the locals from the parameter so runs differ per input.
  f.LocalGet(0);
  f.LocalSet(locals[0]);
  f.LocalGet(0);
  f.I32Const(7);
  f.Emit(Op::kI32Mul);
  f.LocalSet(locals[1]);
  f.I32Const(3);
  f.LocalSet(locals[2]);
  EmitRandomBody(f, rng, 0, locals);
  return b.Build();
}

struct Observation {
  bool ok = false;
  int32_t result = 0;
  std::string error;
  uint64_t retired = 0;
};

Observation RunOne(const Bytes& module_bytes, const RunConfig& config,
                   int32_t arg, uint64_t fuel) {
  Observation obs;
  auto decoded = DecodeModule(module_bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  CompileOptions copts;
  copts.fuse_superinstructions = config.fused;
  auto compiled = CompileModule(std::move(decoded).value(), copts);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  InstanceOptions options;
  options.bounds = config.bounds;
  options.dispatch = config.dispatch;
  auto instance = Instance::Create(compiled.value(), nullptr, nullptr, options);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  auto& inst = *instance.value();
  inst.set_fuel_limit(fuel);
  auto out = inst.CallExport("f", {MakeI32(arg)});
  obs.ok = out.ok();
  if (out.ok()) {
    obs.result = out.value()[0].i32;
  } else {
    obs.error = out.status().message();
  }
  obs.retired = inst.instructions_retired();
  return obs;
}

void ExpectAgreement(const Bytes& module_bytes, int32_t arg, uint64_t fuel,
                     const std::string& context) {
  const auto configs = AllConfigs();
  const Observation base = RunOne(module_bytes, configs[0], arg, fuel);
  for (size_t i = 1; i < configs.size(); ++i) {
    const Observation obs = RunOne(module_bytes, configs[i], arg, fuel);
    const std::string label =
        context + ": " + configs[0].Name() + " vs " + configs[i].Name();
    EXPECT_EQ(base.ok, obs.ok) << label << " (" << base.error << " vs "
                               << obs.error << ")";
    if (base.ok && obs.ok) {
      EXPECT_EQ(base.result, obs.result) << label;
    } else {
      EXPECT_EQ(base.error, obs.error) << label;
    }
    EXPECT_EQ(base.retired, obs.retired) << label;
  }
}

TEST(DispatchDiffTest, RandomModulesAgreeAcrossAllTiers) {
  Rng rng(0xfaa51e7);
  for (int m = 0; m < 40; ++m) {
    const Bytes module_bytes = RandomModule(rng);
    for (int32_t arg : {0, 1, 7, 255, 4095, -1}) {
      std::ostringstream context;
      context << "module " << m << " arg " << arg;
      ExpectAgreement(module_bytes, arg, /*fuel=*/0, context.str());
    }
  }
}

TEST(DispatchDiffTest, FuelExhaustionAgreesAcrossAllTiers) {
  // Per-segment fuel accounting must trip at the same instruction budget in
  // every tier: fused ops charge their full pre-fusion weight, so a fuel
  // limit that exhausts mid-loop yields the same kFuelExhausted trap and the
  // same retired count everywhere.
  Rng rng(0xdecade);
  for (int m = 0; m < 10; ++m) {
    const Bytes module_bytes = RandomModule(rng);
    for (uint64_t fuel : {5, 25, 100, 1000}) {
      std::ostringstream context;
      context << "module " << m << " fuel " << fuel;
      ExpectAgreement(module_bytes, /*arg=*/1234, fuel, context.str());
    }
  }
}

TEST(DispatchDiffTest, RetiredCountsAreExactOnAStraightLineProgram) {
  // Hand-counted ground truth: f() = 2 + 3 executes exactly four wire
  // instructions (two consts, one add, the implicit end/return). Every tier
  // — including fused, where const+const+add does not fuse but the count
  // logic still runs through the prefix-sum path — must report exactly 4.
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  f.I32Const(2);
  f.I32Const(3);
  f.Emit(Op::kI32Add);
  const Bytes bytes = b.Build();
  for (const auto& config : AllConfigs()) {
    const Observation obs = RunOne(bytes, config, 0, 0);
    EXPECT_TRUE(obs.ok) << config.Name() << ": " << obs.error;
    EXPECT_EQ(obs.result, 5) << config.Name();
    EXPECT_EQ(obs.retired, 4u) << config.Name();
  }
}

TEST(DispatchDiffTest, FusedLoopRetiresPreFusionCount) {
  // A canonical counted loop hits LoopGeSLC/IncLocal fusion; the fused run
  // must retire exactly as many instructions as the unfused run.
  ModuleBuilder b;
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  const uint32_t i = f.AddLocal(ValType::kI32);
  const uint32_t acc = f.AddLocal(ValType::kI32);
  f.ForConstLimit(i, 0, 100, [&] {
    f.LocalGet(acc);
    f.LocalGet(i);
    f.Emit(Op::kI32Add);
    f.LocalSet(acc);
  });
  f.LocalGet(acc);
  const Bytes bytes = b.Build();
  RunConfig fused{GuestDispatch::kThreaded, GuestBounds::kChecked, true};
  RunConfig unfused{GuestDispatch::kSwitch, GuestBounds::kChecked, false};
  const Observation a = RunOne(bytes, fused, 0, 0);
  const Observation c = RunOne(bytes, unfused, 0, 0);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_EQ(a.result, 4950);
  EXPECT_EQ(c.result, 4950);
  EXPECT_EQ(a.retired, c.retired);
  EXPECT_GT(a.retired, 500u);  // the loop actually ran
}

}  // namespace
}  // namespace faasm::wasm
