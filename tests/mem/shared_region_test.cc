#include "mem/shared_region.h"

#include <gtest/gtest.h>
#include <sys/mman.h>

#include <cstring>

#include "mem/page.h"

namespace faasm {
namespace {

TEST(SharedRegionTest, CreateAndWriteThroughHostView) {
  auto region = SharedRegion::Create("test", 1000);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  auto& r = *region.value();
  EXPECT_EQ(r.size(), 1000u);
  EXPECT_EQ(r.mapped_size(), kHostPageBytes);
  std::memset(r.host_view(), 0xAB, r.size());
  EXPECT_EQ(r.host_view()[999], 0xAB);
}

TEST(SharedRegionTest, ZeroSizeRejected) {
  auto region = SharedRegion::Create("empty", 0);
  EXPECT_FALSE(region.ok());
  EXPECT_EQ(region.status().code(), StatusCode::kInvalidArgument);
}

TEST(SharedRegionTest, SizeRoundsUpToHostPages) {
  auto region = SharedRegion::Create("round", kHostPageBytes + 1);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region.value()->mapped_size(), 2 * kHostPageBytes);
}

TEST(SharedRegionTest, TwoViewsOfSamePhysicalMemory) {
  // A second MAP_SHARED view of the region's fd must alias the first.
  auto region = SharedRegion::Create("alias", kHostPageBytes);
  ASSERT_TRUE(region.ok());
  auto& r = *region.value();
  void* second = mmap(nullptr, r.mapped_size(), PROT_READ | PROT_WRITE, MAP_SHARED, r.fd(), 0);
  ASSERT_NE(second, MAP_FAILED);
  r.host_view()[42] = 7;
  EXPECT_EQ(static_cast<uint8_t*>(second)[42], 7);
  static_cast<uint8_t*>(second)[43] = 9;
  EXPECT_EQ(r.host_view()[43], 9);
  munmap(second, r.mapped_size());
}

}  // namespace
}  // namespace faasm
