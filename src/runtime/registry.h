// FunctionRegistry: the upload service (§5.2). Wasm binaries are decoded,
// validated and code-generated once at upload; the resulting immutable
// CompiledModule is the "object file" shared by every Faaslet that runs the
// function. Native stand-in functions register here too.
#ifndef FAASM_RUNTIME_REGISTRY_H_
#define FAASM_RUNTIME_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>

#include "core/faaslet.h"

namespace faasm {

// Per-function knobs carried into the FunctionSpec.
struct FunctionOptions {
  std::string entrypoint = "main";
  std::string wasm_init_export;
  std::function<Status(InvocationContext&)> native_init;
  uint32_t min_memory_pages = 1;
  uint32_t max_memory_pages = 2048;
  TimeNs simulated_init_ns = 0;
  // Scheduler locality hint: the state key whose master host should be
  // preferred for placement (see FunctionSpec::state_affinity_key).
  std::string state_affinity_key;
  // Widens the hint to every holder of the key's shard — master OR backup.
  // For read-mostly functions any holder serves the key's reads in-process
  // via the replica tier (kvs_client.h), so placement spreads across R hosts
  // instead of funnelling at the master. Leave off for write-heavy
  // functions: writes still pay the forward to the master from a backup.
  bool state_affinity_read_mostly = false;
};

class FunctionRegistry {
 public:
  // Upload path for user-supplied wasm: full decode + validate + codegen.
  Status UploadWasm(const std::string& name, const Bytes& binary, FunctionOptions options = {});

  // Registers an already-compiled module (used by in-process authors).
  Status RegisterWasm(const std::string& name,
                      std::shared_ptr<const wasm::CompiledModule> module,
                      FunctionOptions options = {});

  Status RegisterNative(const std::string& name, NativeFn fn, FunctionOptions options = {});

  Result<FunctionSpec> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;
  size_t size() const;

  // The function's state-affinity key ("" when unset or unknown). Scheduling
  // hot path: avoids copying the whole FunctionSpec per submit.
  std::string StateAffinityKey(const std::string& name) const;
  // The read-mostly widening flag (false when unset or unknown): whether the
  // affinity hint covers every holder of the key's shard, not just the
  // master.
  bool StateAffinityReadMostly(const std::string& name) const;

 private:
  Status Register(const std::string& name, FunctionSpec spec);

  mutable std::mutex mutex_;
  std::map<std::string, FunctionSpec> functions_;
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_REGISTRY_H_
