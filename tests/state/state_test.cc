// Two-tier state tests: replica lifecycle, push/pull (full + chunked), page
// tracking, local and global locks, append.
#include <gtest/gtest.h>

#include "state/local_tier.h"

namespace faasm {
namespace {

class StateTest : public ::testing::Test {
 protected:
  StateTest()
      : network_(&clock_, NoLatency()),
        server_(&store_, &network_),
        kvs_(&network_, "host-0"),
        tier_(&kvs_, &clock_) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  void SeedGlobal(const std::string& key, size_t size, uint8_t fill) {
    store_.Set(key, Bytes(size, fill));
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore store_;
  KvsServer server_;
  KvsClient kvs_;
  LocalTier tier_;
};

TEST_F(StateTest, PullCreatesSizedReplica) {
  SeedGlobal("k", 10000, 0x5A);
  auto kv = tier_.Lookup("k");
  EXPECT_FALSE(kv->allocated());
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_TRUE(kv->allocated());
  EXPECT_EQ(kv->size(), 10000u);
  EXPECT_EQ(kv->data()[0], 0x5A);
  EXPECT_EQ(kv->data()[9999], 0x5A);
}

TEST_F(StateTest, LookupIsSharedPerKey) {
  auto a = tier_.Lookup("k");
  auto b = tier_.Lookup("k");
  EXPECT_EQ(a.get(), b.get());  // same replica object: in-memory sharing
  EXPECT_NE(tier_.Lookup("other").get(), a.get());
}

TEST_F(StateTest, PushWritesGlobal) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(128).ok());
  std::memset(kv->data(), 0x7B, 128);
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(store_.Get("k").value(), Bytes(128, 0x7B));
}

TEST_F(StateTest, ChunkedPullFetchesOnlyTouchedPages) {
  const size_t size = 64 * StateKeyValue::kStatePageBytes;
  SeedGlobal("big", size, 0x11);
  auto kv = tier_.Lookup("big");
  network_.ResetStats();
  // Pull a 2-page window in the middle.
  ASSERT_TRUE(kv->PullChunk(10 * StateKeyValue::kStatePageBytes, 2 * StateKeyValue::kStatePageBytes)
                  .ok());
  EXPECT_EQ(kv->resident_pages(), 2u);
  const uint64_t bytes_after_chunk = network_.total_bytes();
  // Two pages (+ size probe) — far less than the full 256 KiB value.
  EXPECT_LT(bytes_after_chunk, 3 * StateKeyValue::kStatePageBytes);
  EXPECT_EQ(kv->data()[10 * StateKeyValue::kStatePageBytes], 0x11);

  // Re-pulling the same chunk is free (pages resident).
  ASSERT_TRUE(kv->PullChunk(10 * StateKeyValue::kStatePageBytes, StateKeyValue::kStatePageBytes)
                  .ok());
  EXPECT_EQ(network_.total_bytes(), bytes_after_chunk);
}

TEST_F(StateTest, PullAfterInvalidateRefetches) {
  SeedGlobal("k", StateKeyValue::kStatePageBytes, 0x22);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  store_.Set("k", Bytes(StateKeyValue::kStatePageBytes, 0x33));
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x22);  // cached: pages resident, no refetch
  kv->InvalidateReplica();
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x33);
}

TEST_F(StateTest, PushChunkWritesRange) {
  SeedGlobal("k", 8192, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  std::memset(kv->data() + 4096, 0xEE, 100);
  ASSERT_TRUE(kv->PushChunk(4096, 100).ok());
  auto global = store_.Get("k").value();
  EXPECT_EQ(global[4095], 0x00);
  EXPECT_EQ(global[4096], 0xEE);
  EXPECT_EQ(global[4195], 0xEE);
  EXPECT_EQ(global[4196], 0x00);
}

TEST_F(StateTest, OutOfRangeChunksRejected) {
  SeedGlobal("k", 100, 0x01);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->PullChunk(90, 20).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(kv->PushChunk(90, 20).code(), StatusCode::kOutOfRange);
}

TEST_F(StateTest, PushBeforeAllocationFails) {
  auto kv = tier_.Lookup("k");
  EXPECT_EQ(kv->Push().code(), StatusCode::kFailedPrecondition);
}

TEST_F(StateTest, CapacityIsFixedByFirstAllocation) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(4096).ok());
  EXPECT_TRUE(kv->EnsureCapacity(2000).ok());  // shrink request is fine
  EXPECT_EQ(kv->EnsureCapacity(1 << 20).code(), StatusCode::kResourceExhausted);
}

TEST_F(StateTest, AppendBypassesReplica) {
  auto kv = tier_.Lookup("events");
  ASSERT_TRUE(kv->Append(Bytes{1, 2}).ok());
  ASSERT_TRUE(kv->Append(Bytes{3}).ok());
  EXPECT_EQ(kv->ReadAppended().value(), (Bytes{1, 2, 3}));
}

TEST_F(StateTest, GlobalLocksSerialiseAcrossTiers) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->LockGlobalWrite().ok());
  // Another host cannot take the lock now.
  KvsClient other(&network_, "host-1");
  EXPECT_FALSE(other.TryLockWrite("k").value());
  ASSERT_TRUE(kv->UnlockGlobalWrite().ok());
  EXPECT_TRUE(other.TryLockWrite("k").value());
  ASSERT_TRUE(other.UnlockWrite("k").ok());
}

TEST_F(StateTest, LocalLocksAllowSharedReaders) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(16).ok());
  kv->LockRead();
  kv->LockRead();  // second reader does not deadlock
  kv->UnlockRead();
  kv->UnlockRead();
  kv->LockWrite();
  kv->UnlockWrite();
}

TEST_F(StateTest, TierAccounting) {
  SeedGlobal("a", 1000, 1);
  SeedGlobal("b", 2000, 2);
  ASSERT_TRUE(tier_.Lookup("a")->Pull().ok());
  ASSERT_TRUE(tier_.Lookup("b")->Pull().ok());
  EXPECT_EQ(tier_.key_count(), 2u);
  EXPECT_EQ(tier_.resident_bytes(), 3000u);
  tier_.Clear();
  EXPECT_EQ(tier_.key_count(), 0u);
}

}  // namespace
}  // namespace faasm
