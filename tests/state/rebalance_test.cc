// Chaos tests for live shard rebalancing (ISSUE 4 acceptance): writer
// functions hammer counters through DDOs while hosts join and leave the
// sharded tier. Every acknowledged increment must be reflected in the final
// counter values — migration may stall ops (kWrongMaster redirects) but must
// never lose or double an update — and a distributed lock held across a
// migration keeps excluding a second acquirer.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {
namespace {

constexpr int kCounters = 8;

std::string CounterKey(int i) { return "counter-" + std::to_string(i); }

// Registers "inc": reads a counter index from the input, then performs an
// exact cross-host increment — global write lock, invalidate + pull (the
// lock makes the re-pull see every prior push), increment, delta push,
// unlock. Any failure path returns a distinct nonzero code so a lost ack is
// distinguishable from a refused one.
void RegisterIncrement(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("inc",
                                  [](InvocationContext& ctx) {
                                    ByteReader reader(ctx.Input());
                                    auto index = reader.Get<uint32_t>();
                                    if (!index.ok()) {
                                      return 1;
                                    }
                                    SharedArray<uint64_t> counter(&ctx.state(),
                                                                  CounterKey(index.value()));
                                    if (!counter.kv().LockGlobalWrite().ok()) {
                                      return 2;
                                    }
                                    counter.kv().InvalidateReplica();
                                    if (!counter.Attach().ok()) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 3;
                                    }
                                    uint64_t* value = counter.WritableElements(0, 1);
                                    if (value == nullptr) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 4;
                                    }
                                    *value += 1;
                                    counter.MarkDirtyElements(0, 1);
                                    const bool pushed = counter.Push().ok();
                                    const bool unlocked =
                                        counter.kv().UnlockGlobalWrite().ok();
                                    return pushed && unlocked ? 0 : 5;
                                  })
                  .ok());
}

uint64_t ReadCounter(FaasmCluster& cluster, int i) {
  auto value = cluster.kvs().Get(CounterKey(i));
  if (!value.ok() || value.value().size() != sizeof(uint64_t)) {
    ADD_FAILURE() << "counter " << i << " unreadable: " << value.status().ToString();
    return 0;
  }
  uint64_t count = 0;
  std::memcpy(&count, value.value().data(), sizeof(count));
  return count;
}

TEST(RebalanceTest, NoAcknowledgedIncrementLostAcrossHostChurn) {
  ClusterConfig config;
  config.hosts = 4;  // sharded tier is the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  RegisterIncrement(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  std::array<uint64_t, kCounters> acked{};

  cluster.Run([&](Frontend& frontend) {
    // Each round: launch a batch of increments, churn the membership while
    // they are in flight, then await the batch. The schedule removes both
    // original hosts (shards populated since epoch 0) and a freshly added
    // one, wandering between 4 and 5 hosts.
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},          // + host-4
        {false, "host-1"},   // - an original host
        {true, ""},          // + host-5
        {false, "host-4"},   // - a host added under load
        {true, ""},          // + host-6
        {false, "host-0"},   // - another original
    };
    for (const auto& [add, name] : churn) {
      std::vector<std::pair<uint64_t, uint32_t>> batch;
      for (int i = 0; i < 3 * kCounters; ++i) {
        const uint32_t counter = i % kCounters;
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(counter);
        auto id = frontend.Submit("inc", std::move(input));
        ASSERT_TRUE(id.ok());
        batch.emplace_back(id.value(), counter);
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (const auto& [id, counter] : batch) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "increment refused mid-churn";
        acked[counter] += 1;
      }
    }
  });

  // Six membership changes happened and keys really moved between shards.
  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_EQ(cluster.shard_map().shard_count(), 4u);  // 4 seed + 3 added - 3 removed
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_GT(cluster.migration_stats().bytes_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 6u);

  // THE acceptance property: every acknowledged increment — and nothing
  // else — is in the final values, wherever each key's master ended up.
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
}

TEST(RebalanceTest, LockHeldAcrossMigrationStillExcludes) {
  ClusterConfig config;
  config.hosts = 4;
  FaasmCluster cluster(config);

  // Pick a key that WILL move to the next host added ("host-4"): the
  // prospective assignment is a pure function of the endpoint set.
  const ShardAssignment before = cluster.shard_map().Snapshot();
  const ShardAssignment after = before.With(ShardMap::EndpointForHost("host-4"));
  std::string key;
  for (int i = 0; i < 100000 && key.empty(); ++i) {
    std::string probe = "lock-probe-" + std::to_string(i);
    if (before.MasterFor(probe) != after.MasterFor(probe)) {
      key = std::move(probe);
    }
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(cluster.kvs().Set(key, Bytes{1, 2, 3}).ok());

  cluster.Run([&](Frontend&) {
    // host-0 takes the global write lock, the key migrates to the new
    // host's shard, and the lock must keep excluding host-1 afterwards.
    ASSERT_TRUE(cluster.host(0).kvs().TryLockWrite(key).value());

    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(cluster.shard_map().MasterFor(key), ShardMap::EndpointForHost(added.value()));

    EXPECT_FALSE(cluster.host(1).kvs().TryLockWrite(key).value());
    EXPECT_FALSE(cluster.host(1).kvs().TryLockRead(key).value());
    // Ownership travelled with the key: the original holder unlocks against
    // the NEW master, then the second acquirer gets in.
    ASSERT_TRUE(cluster.host(0).kvs().UnlockWrite(key).ok());
    EXPECT_TRUE(cluster.host(1).kvs().TryLockWrite(key).value());
    ASSERT_TRUE(cluster.host(1).kvs().UnlockWrite(key).ok());

    // The value itself survived the move.
    EXPECT_EQ(cluster.host(2).kvs().Get(key).value(), (Bytes{1, 2, 3}));
  });
}

TEST(RebalanceTest, RemovedHostsShardEndsEmpty) {
  // After a removal every key the leaver mastered is readable through the
  // survivors — the leaver's shard keeps no data, and its live-map
  // ownership guard bounces any straggler op.
  ClusterConfig config;
  config.hosts = 3;
  FaasmCluster cluster(config);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cluster.kvs().Set("seed-" + std::to_string(i), Bytes(128, 1)).ok());
  }
  cluster.Run([&](Frontend&) {
    ASSERT_TRUE(cluster.RemoveHost("host-2").ok());
    for (int i = 0; i < 32; ++i) {
      auto value = cluster.kvs().Get("seed-" + std::to_string(i));
      ASSERT_TRUE(value.ok()) << "seed-" << i << ": " << value.status().ToString();
      EXPECT_EQ(value.value().size(), 128u);
      EXPECT_NE(cluster.shard_map().MasterFor("seed-" + std::to_string(i)),
                ShardMap::EndpointForHost("host-2"));
    }
  });
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 1u);
}

}  // namespace
}  // namespace faasm
