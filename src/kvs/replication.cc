#include "kvs/replication.h"

#include <algorithm>
#include <utility>

#include "kvs/batch_codec.h"
#include "net/framing.h"

namespace faasm {

std::string ReplicaEndpointForHost(const std::string& host) { return "rep:" + host; }

// --- ReplicaShard -------------------------------------------------------------

std::vector<KvsBatchResult> ReplicaShard::ApplyForwarded(const std::vector<KvsBatchOp>& ops) {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<KvsBatchResult> results(ops.size());
  if (fenced_) {
    for (KvsBatchResult& result : results) {
      result.status = Unavailable("replica: fenced (host failed over)");
    }
    return results;
  }
  std::vector<const KvsBatchOp*> fresh;
  std::vector<size_t> fresh_index;
  fresh.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    KeyMeta& meta = meta_[ops[i].key];
    if (ops[i].seq <= meta.floor) {
      // Already folded into an installed snapshot, or an older write that
      // lost a same-key race: dropping it is what keeps replay idempotent.
      skipped_ops_.Increment();
      continue;  // results[i] defaults to Ok
    }
    // Raise the floor only: a forward keeps a certified copy exact but never
    // touches `synced` — certification belongs to the membership-serialised
    // install/anchor flows alone.
    meta.floor = ops[i].seq;
    fresh.push_back(&ops[i]);
    fresh_index.push_back(i);
  }
  std::vector<KvsBatchResult> applied = store_.ExecuteBatch(fresh);
  for (size_t j = 0; j < applied.size(); ++j) {
    results[fresh_index[j]] = std::move(applied[j]);
  }
  return results;
}

void ReplicaShard::Install(const std::string& key, const KeyExport& record, bool only_if_newer) {
  InstallAt(key, record, only_if_newer, CurrentEpoch());
}

void ReplicaShard::InstallAt(const std::string& key, const KeyExport& record, bool only_if_newer,
                             uint64_t synced_epoch) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (fenced_) {
    return;
  }
  if (only_if_newer) {
    auto it = meta_.find(key);
    if (it != meta_.end() && it->second.floor > record.seq) {
      // A forward newer than this snapshot already applied. Deliberately NOT
      // certified for reads either: the copy now reflects forwards the
      // snapshot predates, and only the next anchor proves which epoch's
      // master they came from.
      return;
    }
  }
  KeyMeta& meta = meta_[key];
  meta.floor = record.seq;
  meta.synced_epoch = synced_epoch;
  meta.synced = true;
  store_.InstallKey(key, record);
}

void ReplicaShard::AnchorFloor(const std::string& key, uint64_t seq) {
  AnchorFloorAt(key, seq, CurrentEpoch());
}

void ReplicaShard::AnchorFloorAt(const std::string& key, uint64_t seq, uint64_t synced_epoch) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (fenced_) {
    return;
  }
  KeyMeta& meta = meta_[key];
  meta.floor = seq;
  meta.synced_epoch = synced_epoch;
  meta.synced = true;
}

Result<Bytes> ReplicaShard::ReadValue(const std::string& key, uint64_t offset, uint64_t len) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (fenced_) {
    return Unavailable("replica: fenced (host failed over)");
  }
  auto it = meta_.find(key);
  if (it == meta_.end() || !it->second.synced || it->second.synced_epoch != CurrentEpoch()) {
    return FailedPrecondition("replica: copy not certified for the current epoch");
  }
  // Mirror the master read path exactly: {0, whole-value} is a Get, anything
  // else a ranged read. The replica store has no guard/filter/frozen state,
  // so the answer is the copy's truth — NotFound included.
  constexpr uint64_t kWholeValue = ~uint64_t{0};
  Result<Bytes> result = offset == 0 && len == kWholeValue ? store_.Get(key)
                                                           : store_.GetRange(key, offset, len);
  if (result.ok() || result.status().code() == StatusCode::kNotFound) {
    replica_reads_.Increment();
  }
  return result;
}

uint64_t ReplicaShard::FloorSeq(const std::string& key) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = meta_.find(key);
  return it == meta_.end() ? 0 : it->second.floor;
}

void ReplicaShard::Erase(const std::string& key) {
  std::lock_guard<std::mutex> guard(mutex_);
  meta_.erase(key);
  store_.EraseKey(key);
}

void ReplicaShard::Clear() {
  std::lock_guard<std::mutex> guard(mutex_);
  meta_.clear();
  for (const std::string& key : store_.Keys()) {
    store_.EraseKey(key);
  }
}

void ReplicaShard::Fence() {
  std::lock_guard<std::mutex> guard(mutex_);
  fenced_ = true;
  // Drop the corpse's copies NOW, not at the eventual Clear: a second crash
  // racing this failover must find nothing here to promote from — and a
  // zombie read must find nothing certified to serve.
  meta_.clear();
  for (const std::string& key : store_.Keys()) {
    store_.EraseKey(key);
  }
}

void ReplicaShard::Unfence() {
  std::lock_guard<std::mutex> guard(mutex_);
  fenced_ = false;
}

bool ReplicaShard::fenced() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return fenced_;
}

// --- ReplicaServer ------------------------------------------------------------

ReplicaServer::ReplicaServer(ReplicaShard* shard, InProcNetwork* network, std::string endpoint)
    : shard_(shard), network_(network), endpoint_(std::move(endpoint)) {
  network_->RegisterEndpoint(endpoint_, [this](const Bytes& request) { return Handle(request); });
}

ReplicaServer::~ReplicaServer() { network_->UnregisterEndpoint(endpoint_); }

Bytes ReplicaServer::Handle(const Bytes& request) {
  Bytes out;
  ByteWriter writer(out);
  ByteReader reader(request);
  auto code = reader.Get<uint8_t>();
  if (!code.ok()) {
    WriteStatus(writer, InvalidArgument("replica: empty request"));
    return out;
  }
  const auto op = static_cast<KvsOp>(code.value());

  if (op == KvsOp::kMigrateInstall) {
    // A catch-up / promotion snapshot: same wire as the migration stream.
    auto key = reader.GetString();
    if (!key.ok()) {
      WriteStatus(writer, key.status());
      return out;
    }
    auto payload = reader.GetBytes();
    if (!payload.ok()) {
      WriteStatus(writer, payload.status());
      return out;
    }
    auto record = KeyExport::Deserialize(payload.value());
    if (!record.ok()) {
      WriteStatus(writer, record.status());
      return out;
    }
    shard_->Install(key.value(), record.value());
    WriteStatus(writer, OkStatus());
    return out;
  }

  if (op != KvsOp::kBatch) {
    WriteStatus(writer, InvalidArgument("replica: unsupported op"));
    return out;
  }

  auto parts = ReadFrameBatch(reader);
  if (!parts.ok()) {
    WriteStatus(writer, parts.status());
    return out;
  }
  // Decode every sub-op first so results stay index-aligned even when a part
  // is malformed (mirrors KvsServer::HandleBatch).
  std::vector<Status> decode_status(parts.value().size(), OkStatus());
  std::vector<KvsBatchOp> decoded;
  std::vector<size_t> decoded_index;
  for (size_t i = 0; i < parts.value().size(); ++i) {
    auto decoded_op = DecodeReplicaOp(parts.value()[i]);
    if (!decoded_op.ok()) {
      decode_status[i] = decoded_op.status();
      continue;
    }
    decoded.push_back(std::move(decoded_op).value());
    decoded_index.push_back(i);
  }
  std::vector<KvsBatchResult> applied = shard_->ApplyForwarded(decoded);
  std::vector<KvsBatchResult> results(parts.value().size());
  for (size_t i = 0; i < results.size(); ++i) {
    results[i].status = decode_status[i];
  }
  std::vector<KvsOp> result_ops(parts.value().size(), KvsOp::kGet);
  for (size_t j = 0; j < decoded_index.size(); ++j) {
    result_ops[decoded_index[j]] = decoded[j].op;
    results[decoded_index[j]] = std::move(applied[j]);
  }

  forward_rpcs_.Increment();
  forwarded_ops_.Increment(decoded.size());

  WriteStatus(writer, OkStatus());
  std::vector<Bytes> result_parts;
  result_parts.reserve(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    result_parts.push_back(EncodeBatchResult(result_ops[i], results[i]));
  }
  WriteFrameBatch(writer, result_parts);
  return out;
}

// --- ShardReplicator ----------------------------------------------------------

ShardReplicator::ShardReplicator(InProcNetwork* network, const ShardMap* map,
                                 std::string primary_endpoint, const ReplicationConfig* config,
                                 ReplicationStats* stats)
    : network_(network),
      map_(map),
      primary_endpoint_(std::move(primary_endpoint)),
      config_(config),
      stats_(stats) {}

std::vector<std::string> ShardReplicator::BackupReplicaEndpoints() const {
  std::vector<std::string> replicas;
  for (const std::string& backup :
       BackupsFor(map_->Snapshot().endpoints(), primary_endpoint_, config_->factor)) {
    const std::string host = ShardMap::HostForEndpoint(backup);
    if (!host.empty()) {
      replicas.push_back(ReplicaEndpointForHost(host));
    }
  }
  return replicas;
}

void ShardReplicator::OnApplied(const std::vector<KvStore::ForwardedOp>& ops) {
  std::vector<Bytes> parts;
  parts.reserve(ops.size());
  for (const KvStore::ForwardedOp& forwarded : ops) {
    parts.push_back(EncodeReplicaOp(*forwarded.op, forwarded.seq));
  }
  if (parts.empty()) {
    return;
  }
  if (config_->sync) {
    Ship(std::move(parts), ops.size());
    return;
  }
  std::vector<Bytes> ready;
  size_t ready_ops = 0;
  {
    std::lock_guard<std::mutex> guard(queue_mutex_);
    for (Bytes& part : parts) {
      queue_.push_back(std::move(part));
    }
    queued_ops_ += ops.size();
    if (queued_ops_ < static_cast<size_t>(config_->max_lag_ops)) {
      return;  // still under the lag bound
    }
    ready.swap(queue_);
    ready_ops = queued_ops_;
    queued_ops_ = 0;
  }
  Ship(std::move(ready), ready_ops);
}

void ShardReplicator::Flush() {
  std::vector<Bytes> ready;
  size_t ready_ops = 0;
  {
    std::lock_guard<std::mutex> guard(queue_mutex_);
    ready.swap(queue_);
    ready_ops = queued_ops_;
    queued_ops_ = 0;
  }
  if (!ready.empty()) {
    Ship(std::move(ready), ready_ops);
  }
}

size_t ShardReplicator::DropQueue() {
  std::lock_guard<std::mutex> guard(queue_mutex_);
  queue_.clear();
  const size_t dropped = queued_ops_;
  queued_ops_ = 0;
  stats_->async_dropped_ops.Increment(dropped);
  return dropped;
}

size_t ShardReplicator::queued_op_count() const {
  std::lock_guard<std::mutex> guard(queue_mutex_);
  return queued_ops_;
}

void ShardReplicator::Ship(std::vector<Bytes> parts, size_t op_count) {
  Bytes request;
  request.reserve(16);  // quiets a GCC 12 -Wstringop-overflow false positive
  ByteWriter writer(request);
  writer.Put<uint8_t>(static_cast<uint8_t>(KvsOp::kBatch));
  WriteFrameBatch(writer, parts);
  for (const std::string& replica : BackupReplicaEndpoints()) {
    auto response = network_->Call(primary_endpoint_, replica, request);
    if (response.ok()) {
      stats_->forward_rpcs.Increment();
      stats_->forwarded_ops.Increment(op_count);
    } else {
      // A dead or unreachable backup: the op stays applied and acked on the
      // primary; the backup converges at the next Reconcile (or is replaced
      // by failover). Never blocks the ack path beyond this one attempt.
      stats_->dropped_forward_ops.Increment(op_count);
    }
  }
}

// --- ReplicationManager -------------------------------------------------------

ReplicationManager::ReplicationManager(InProcNetwork* network, ShardMap* map,
                                       const std::map<std::string, KvStore*>* primary_stores,
                                       ReplicationConfig config)
    : network_(network), map_(map), primary_stores_(primary_stores), config_(config) {}

void ReplicationManager::AttachHost(const std::string& host, KvStore* primary) {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) {
    HostState state;
    state.replica = std::make_unique<ReplicaShard>(map_);
    state.server =
        std::make_unique<ReplicaServer>(state.replica.get(), network_, ReplicaEndpointForHost(host));
    state.replicator = std::make_unique<ShardReplicator>(
        network_, map_, ShardMap::EndpointForHost(host), &config_, &stats_);
    it = hosts_.emplace(host, std::move(state)).first;
  } else {
    // A re-added host name: its fresh primary starts a NEW sequence space,
    // so stale floors (and stale backup copies) must not filter its forwards
    // — and a crash fence from the name's previous life must not reject them.
    it->second.replica->Unfence();
    it->second.replica->Clear();
  }
  ShardReplicator* replicator = it->second.replicator.get();
  primary->SetUpdateHook(
      [replicator](const std::vector<KvStore::ForwardedOp>& ops) { replicator->OnApplied(ops); });
}

ReplicaShard* ReplicationManager::ReplicaForHost(const std::string& host) {
  auto it = hosts_.find(host);
  return it == hosts_.end() ? nullptr : it->second.replica.get();
}

const ReplicaShard* ReplicationManager::ReplicaForHost(const std::string& host) const {
  auto it = hosts_.find(host);
  return it == hosts_.end() ? nullptr : it->second.replica.get();
}

void ReplicationManager::FenceHost(const std::string& host) {
  if (auto it = hosts_.find(host); it != hosts_.end()) {
    it->second.replica->Fence();
  }
}

KvStore* ReplicationManager::PrimaryStoreAt(const std::string& endpoint) const {
  auto it = primary_stores_->find(endpoint);
  return it == primary_stores_->end() ? nullptr : it->second;
}

void ReplicationManager::MirrorKey(const std::string& key) {
  const ShardAssignment assignment = map_->Snapshot();
  const std::string master = assignment.MasterFor(key);
  KvStore* primary = PrimaryStoreAt(master);
  if (primary == nullptr) {
    return;
  }
  const KeyExport record = primary->ExportKey(key);
  for (const std::string& backup : BackupsFor(assignment.endpoints(), master, config_.factor)) {
    ReplicaShard* replica = ReplicaForHost(ShardMap::HostForEndpoint(backup));
    if (replica == nullptr) {
      continue;
    }
    if (record.empty()) {
      replica->Erase(key);
    } else {
      // Certify at the SNAPSHOT's epoch, not the live one: if a membership
      // change slipped between Snapshot() and here, the stale stamp fails
      // the current-epoch check instead of certifying a copy whose master
      // may already have moved.
      replica->InstallAt(key, record, /*only_if_newer=*/true, assignment.epoch());
    }
  }
}

Result<uint64_t> ReplicationManager::StreamInstall(const std::string& from, const std::string& to,
                                                   const std::string& key,
                                                   const KeyExport& record) {
  Bytes request;
  request.reserve(16);  // quiets a GCC 12 -Wstringop-overflow false positive
  ByteWriter writer(request);
  writer.Put<uint8_t>(static_cast<uint8_t>(KvsOp::kMigrateInstall));
  writer.PutString(key);
  writer.PutBytes(record.Serialize());
  FAASM_ASSIGN_OR_RETURN(Bytes response, network_->Call(from, to, request));
  ByteReader reader(response);
  FAASM_RETURN_IF_ERROR(ReadStatus(reader));
  return static_cast<uint64_t>(request.size());
}

void ReplicationManager::Reconcile() {
  FlushAll();
  const ShardAssignment assignment = map_->Snapshot();

  // Catch-up: every primary streams what its backups are missing. Content
  // comparison (not seq comparison) decides what moves; matching copies only
  // re-anchor their floor, which is what carries the duplicate filter across
  // a primary change into the new primary's sequence space.
  for (const std::string& primary_endpoint : assignment.endpoints()) {
    KvStore* primary = PrimaryStoreAt(primary_endpoint);
    if (primary == nullptr) {
      continue;
    }
    const std::vector<std::string> backups =
        BackupsFor(assignment.endpoints(), primary_endpoint, config_.factor);
    if (backups.empty()) {
      continue;
    }
    for (const std::string& key : primary->Keys()) {
      if (assignment.MasterFor(key) != primary_endpoint) {
        continue;  // residue of an unfinished handoff; not ours to replicate
      }
      primary->FreezeKey(key);
      const KeyExport record = primary->ExportKey(key);
      for (const std::string& backup_endpoint : backups) {
        const std::string backup_host = ShardMap::HostForEndpoint(backup_endpoint);
        ReplicaShard* replica = ReplicaForHost(backup_host);
        if (replica == nullptr) {
          continue;
        }
        const KeyExport have = replica->store()->ExportKey(key);
        if (have.SameContent(record)) {
          // Matching content re-certifies for replica reads at this epoch
          // (Reconcile runs under the membership lock, so the snapshot epoch
          // IS the live epoch — stamping it keeps the two flows uniform).
          replica->AnchorFloorAt(key, record.seq, assignment.epoch());
          continue;
        }
        auto streamed =
            StreamInstall(primary_endpoint, ReplicaEndpointForHost(backup_host), key, record);
        if (streamed.ok()) {
          stats_.catchup_keys.Increment();
          stats_.catchup_bytes.Increment(streamed.value());
        }
      }
      primary->UnfreezeKey(key);
    }
  }

  // GC: drop replica copies this assignment no longer expects the host to
  // hold (its primary died or moved, the backup set rotated, or the key was
  // deleted at its primary).
  for (auto& [host, state] : hosts_) {
    const std::string host_endpoint = ShardMap::EndpointForHost(host);
    for (const std::string& key : state.replica->store()->Keys()) {
      bool keep = false;
      const std::string master = assignment.MasterFor(key);
      if (!master.empty() && master != host_endpoint &&
          assignment.endpoints().count(host_endpoint) > 0) {
        const std::vector<std::string> backups =
            BackupsFor(assignment.endpoints(), master, config_.factor);
        KvStore* primary = PrimaryStoreAt(master);
        keep = primary != nullptr && !primary->ExportKey(key).empty() &&
               std::find(backups.begin(), backups.end(), host_endpoint) != backups.end();
        // Hold any copy whose master is unreachable (crashed, failover
        // pending): it may be the LAST copy — a promotion deferred because
        // the post-failover master died too — and erasing it now would turn
        // a recoverable double crash into data loss. The master's own
        // failover re-homes the key and the next Reconcile GCs normally.
        keep = keep || !network_->HasEndpoint(master);
      }
      if (!keep) {
        state.replica->Erase(key);
        stats_.replica_gc_keys.Increment();
      }
    }
  }
}

FailoverStats ReplicationManager::Failover(const std::string& dead_endpoint) {
  FailoverStats result;
  const ShardAssignment before = map_->Snapshot();
  const ShardAssignment after = before.Without(dead_endpoint);
  const std::string dead_host = ShardMap::HostForEndpoint(dead_endpoint);

  // The dead host's own unshipped forwards die with it (async mode).
  if (auto it = hosts_.find(dead_host); it != hosts_.end()) {
    result.async_dropped_ops = it->second.replicator->DropQueue();
  }

  // Union of keys the surviving backups hold for the dead primary: the only
  // copies a crash leaves. (The dead store's memory is consulted below for
  // lost-key ACCOUNTING only — a real deployment has no such luxury.)
  const std::vector<std::string> backups =
      BackupsFor(before.endpoints(), dead_endpoint, config_.factor);
  std::set<std::string> candidates;
  for (const std::string& backup : backups) {
    ReplicaShard* replica = ReplicaForHost(ShardMap::HostForEndpoint(backup));
    if (replica == nullptr) {
      continue;
    }
    for (std::string& key : replica->store()->Keys()) {
      if (before.MasterFor(key) == dead_endpoint) {
        candidates.insert(std::move(key));
      }
    }
  }
  // A double crash strands copies OUTSIDE the dead host's official backup
  // set: failing over crash #1 re-masters a key onto crash #2's (still
  // unconfirmed) shard, the install bounces, and the copy stays parked on
  // crash #1's backup — which is not in OUR backup list. Every replica shard
  // is scanned as a fallback so those copies are promoted now, when the map
  // finally says this host's keys must move.
  for (auto& [host, state] : hosts_) {
    for (std::string& key : state.replica->store()->Keys()) {
      if (before.MasterFor(key) == dead_endpoint) {
        candidates.insert(std::move(key));
      }
    }
  }

  // Promote: install each surviving copy into its post-failover master,
  // BEFORE the epoch flips (migration's install-before-flip guarantee).
  for (const std::string& key : candidates) {
    const std::string new_master = after.MasterFor(key);
    if (new_master.empty()) {
      result.lost_keys++;
      continue;
    }
    KeyExport record;
    std::string source_host;
    for (const std::string& backup : backups) {
      const std::string host = ShardMap::HostForEndpoint(backup);
      ReplicaShard* replica = ReplicaForHost(host);
      if (replica == nullptr) {
        continue;
      }
      record = replica->store()->ExportKey(key);
      if (!record.empty()) {
        source_host = host;
        break;
      }
    }
    if (record.empty()) {
      // Fallback for the widened candidates: the official backups hold
      // nothing, so take the copy from whichever replica parked it (a
      // deferred promotion from an earlier overlapping failover). Official
      // backups were preferred above because they are the actively
      // maintained copies.
      for (auto& [host, state] : hosts_) {
        record = state.replica->store()->ExportKey(key);
        if (!record.empty()) {
          source_host = host;
          break;
        }
      }
    }
    if (record.empty()) {
      result.lost_keys++;
      continue;
    }
    if (ShardMap::EndpointForHost(source_host) == new_master) {
      // The promoting backup IS the new master: the copy is already on the
      // right machine, so promotion is a local install, zero network bytes —
      // the replication twin of the co-located fast path.
      KvStore* primary = PrimaryStoreAt(new_master);
      if (primary != nullptr) {
        KvStore::HookPause pause;
        primary->InstallKey(key, record);
        result.promoted_keys++;
      } else {
        result.lost_keys++;
      }
      continue;
    }
    auto streamed = StreamInstall(ReplicaEndpointForHost(source_host), new_master, key, record);
    if (streamed.ok()) {
      result.promoted_keys++;
      result.bytes_streamed += streamed.value();
    } else if (!network_->HasEndpoint(new_master)) {
      // The post-failover master is unreachable: it crashed too and its own
      // recovery has not run yet. The copy is NOT lost — it stays on its
      // source replica (Reconcile's GC holds copies whose master is
      // unreachable), and that master's failover promotes it via the widened
      // candidate scan above.
      stats_.deferred_promotions.Increment();
    } else {
      result.lost_keys++;
    }
  }

  // Lost-key accounting + hygiene: footprints only the dead primary held.
  KvStore* dead_store = PrimaryStoreAt(dead_endpoint);
  if (dead_store != nullptr) {
    for (const std::string& key : dead_store->Keys()) {
      if (before.MasterFor(key) == dead_endpoint && candidates.count(key) == 0) {
        result.lost_keys++;
      }
      dead_store->EraseKey(key);
    }
  }

  map_->RemoveShard(dead_endpoint);  // FLIP: clients reroute from here on
  result.epoch = map_->epoch();

  // The dead host's replica shard serves nothing any more.
  if (auto it = hosts_.find(dead_host); it != hosts_.end()) {
    it->second.replica->Clear();
  }

  stats_.failovers.Increment();
  stats_.promoted_keys.Increment(result.promoted_keys);
  stats_.lost_keys.Increment(result.lost_keys);
  return result;
}

void ReplicationManager::FlushAll() {
  for (auto& [host, state] : hosts_) {
    state.replicator->Flush();
  }
}

}  // namespace faasm
